(* The consistency oracle and the seeded schedule explorer.

   The oracle unit tests feed hand-built histories — one per property —
   and assert exactly the right property fires. The explorer tests are
   the meta-checks: the canary (a client with its freshness check
   disabled) must be caught and must shrink to its one relevant fault,
   the honest control must pass, identical seeds must reproduce
   identical histories and engine counters, and a quick sweep of random
   fault schedules must be violation-free (SOAK=1 widens the sweep). *)

open Store
module T = Store.Trace
module O = Check.Oracle
module E = Check.Explorer

let soak = Sys.getenv_opt "SOAK" = Some "1"
let uid_x = Uid.make ~group:"g" ~item:"x"
let dg v = Crypto.Sha256.hex_digest v

let ev ~seq ~op ~client ?(session = 1) ~phase ~kind ?outcome ?(ctx = []) () =
  {
    T.seq;
    op;
    time = float_of_int seq;
    client;
    session;
    multi_writer = false;
    causal = false;
    epoch = 0;
    phase;
    kind;
    outcome;
    ctx;
    trace = "";
  }

let props vs = List.sort_uniq compare (List.map (fun v -> v.O.property) vs)

let write_invoke ~seq ~op ~client ?session ?ctx stamp value =
  ev ~seq ~op ~client ?session ~phase:T.Invoke
    ~kind:(T.Write { uid = uid_x; stamp; digest = dg value })
    ?ctx ()

let write_return ~seq ~op ~client ?session ?ctx stamp value =
  ev ~seq ~op ~client ?session ~phase:T.Return
    ~kind:(T.Write { uid = uid_x; stamp; digest = dg value })
    ~outcome:T.Ok_unit ?ctx ()

let read_invoke ~seq ~op ~client ?session ?ctx () =
  ev ~seq ~op ~client ?session ~phase:T.Invoke ~kind:(T.Read { uid = uid_x })
    ?ctx ()

let read_return ~seq ~op ~client ?session ?ctx ~writer stamp value =
  ev ~seq ~op ~client ?session ~phase:T.Return ~kind:(T.Read { uid = uid_x })
    ~outcome:(T.Ok_value { stamp; digest = dg value; writer })
    ?ctx ()

(* ------------------------------------------------------------------ *)
(* Oracle unit tests                                                  *)
(* ------------------------------------------------------------------ *)

let s1 = Stamp.scalar 1
let s2 = Stamp.scalar 2
let s3 = Stamp.scalar 3

let test_oracle_clean () =
  let h =
    [
      write_invoke ~seq:1 ~op:1 ~client:"alice" s1 "v1";
      write_return ~seq:2 ~op:1 ~client:"alice" ~ctx:[ (uid_x, s1) ] s1 "v1";
      read_invoke ~seq:3 ~op:2 ~client:"alice" ~ctx:[ (uid_x, s1) ] ();
      read_return ~seq:4 ~op:2 ~client:"alice" ~ctx:[ (uid_x, s1) ]
        ~writer:"alice" s1 "v1";
    ]
  in
  Alcotest.(check (list string)) "no violations" [] (props (O.check h))

let test_oracle_ctx_monotonic () =
  let h =
    [
      read_invoke ~seq:1 ~op:1 ~client:"alice" ~ctx:[ (uid_x, s2) ] ();
      read_invoke ~seq:2 ~op:2 ~client:"alice" ~ctx:[] ();
    ]
  in
  Alcotest.(check (list string)) "context shrank" [ "ctx-monotonic" ]
    (props (O.check h))

let test_oracle_read_freshness () =
  let h =
    [
      write_invoke ~seq:1 ~op:1 ~client:"w" s1 "v1";
      write_invoke ~seq:2 ~op:2 ~client:"w" s2 "v2";
      read_invoke ~seq:3 ~op:3 ~client:"alice" ~ctx:[ (uid_x, s2) ] ();
      read_return ~seq:4 ~op:3 ~client:"alice" ~ctx:[ (uid_x, s2) ] ~writer:"w"
        s1 "v1";
    ]
  in
  let vs = O.check h in
  Alcotest.(check (list string)) "stale slipped through" [ "read-freshness" ]
    (props vs);
  (* The violating pair is (return, its invoke): concrete evidence. *)
  match vs with
  | [ v ] ->
    Alcotest.(check int) "completing event" 4 v.O.first.T.seq;
    Alcotest.(check (option int)) "paired with the invoke" (Some 3)
      (Option.map (fun (e : T.event) -> e.T.seq) v.O.second)
  | _ -> Alcotest.fail "expected exactly one violation"

let test_oracle_read_your_writes () =
  (* A client that never folds its own writes into its context: the
     floor stays zero, so only read-your-writes can catch the stale
     read-back of its own item. *)
  let h =
    [
      write_invoke ~seq:1 ~op:1 ~client:"w" s1 "v1";
      write_invoke ~seq:2 ~op:2 ~client:"alice" s2 "v2";
      write_return ~seq:3 ~op:2 ~client:"alice" s2 "v2";
      read_invoke ~seq:4 ~op:3 ~client:"alice" ();
      read_return ~seq:5 ~op:3 ~client:"alice" ~writer:"w" s1 "v1";
    ]
  in
  Alcotest.(check (list string)) "own write lost" [ "read-your-writes" ]
    (props (O.check h))

let test_oracle_monotonic_reads () =
  let h =
    [
      write_invoke ~seq:1 ~op:1 ~client:"w" s1 "v1";
      write_invoke ~seq:2 ~op:2 ~client:"w" s2 "v2";
      read_invoke ~seq:3 ~op:3 ~client:"alice" ();
      read_return ~seq:4 ~op:3 ~client:"alice" ~writer:"w" s2 "v2";
      read_invoke ~seq:5 ~op:4 ~client:"alice" ();
      read_return ~seq:6 ~op:4 ~client:"alice" ~writer:"w" s1 "v1";
    ]
  in
  Alcotest.(check (list string)) "reads went backwards"
    [ "monotonic-reads" ]
    (props (O.check h))

let test_oracle_read_linkage () =
  (* Phantom value: nothing was ever written under this stamp. *)
  let phantom =
    [
      read_invoke ~seq:1 ~op:1 ~client:"alice" ();
      read_return ~seq:2 ~op:1 ~client:"alice" ~writer:"w" s3 "forged";
    ]
  in
  Alcotest.(check (list string)) "phantom value" [ "read-linkage" ]
    (props (O.check phantom));
  (* Altered value: the stamp exists but names different bytes. *)
  let altered =
    [
      write_invoke ~seq:1 ~op:1 ~client:"w" s1 "v1";
      read_invoke ~seq:2 ~op:2 ~client:"alice" ();
      read_return ~seq:3 ~op:2 ~client:"alice" ~writer:"w" s1 "tampered";
    ]
  in
  Alcotest.(check (list string)) "altered value" [ "read-linkage" ]
    (props (O.check altered))

let test_oracle_no_fork () =
  let scalar_fork =
    [
      write_invoke ~seq:1 ~op:1 ~client:"w" s3 "va";
      write_invoke ~seq:2 ~op:2 ~client:"w" s3 "vb";
    ]
  in
  Alcotest.(check (list string)) "scalar fork" [ "no-fork" ]
    (props (O.check scalar_fork));
  let ma = Stamp.multi ~time:3 ~writer:"w" ~value:"va" in
  let mb = Stamp.multi ~time:3 ~writer:"w" ~value:"vb" in
  let mw_fork =
    [
      write_invoke ~seq:1 ~op:1 ~client:"w" ma "va";
      write_invoke ~seq:2 ~op:2 ~client:"w" mb "vb";
    ]
  in
  Alcotest.(check (list string)) "multi-writer (time, writer) fork"
    [ "no-fork" ]
    (props (O.check mw_fork))

let test_oracle_ctx_continuity () =
  let h =
    [
      ev ~seq:1 ~op:1 ~client:"alice" ~session:1 ~phase:T.Return
        ~kind:T.Disconnect ~outcome:T.Ok_unit
        ~ctx:[ (uid_x, s2) ]
        ();
      ev ~seq:2 ~op:2 ~client:"alice" ~session:2 ~phase:T.Return
        ~kind:T.Connect
        ~outcome:(T.Connected T.Stored)
        ();
    ]
  in
  Alcotest.(check (list string)) "stored context lost entries"
    [ "ctx-continuity" ]
    (props (O.check h));
  (* A fresh-context reconnect makes no continuity promise. *)
  let fresh =
    [
      ev ~seq:1 ~op:1 ~client:"alice" ~session:1 ~phase:T.Return
        ~kind:T.Disconnect ~outcome:T.Ok_unit
        ~ctx:[ (uid_x, s2) ]
        ();
      ev ~seq:2 ~op:2 ~client:"alice" ~session:2 ~phase:T.Return
        ~kind:T.Connect ~outcome:(T.Connected T.Fresh) ();
    ]
  in
  Alcotest.(check (list string)) "fresh recovery is fine" []
    (props (O.check fresh))

(* ------------------------------------------------------------------ *)
(* Explorer: canary, shrinking, determinism, sweep                    *)
(* ------------------------------------------------------------------ *)

let test_canary_caught () =
  let out = E.run (E.canary_schedule ~seed:7) in
  Alcotest.(check bool) "canary flagged" true (out.E.violations <> []);
  let v = List.hd out.E.violations in
  Alcotest.(check string) "first property" "read-freshness" v.O.property;
  (* The violation names a concrete event pair from the history. *)
  (match v.O.second with
  | None -> Alcotest.fail "violation has no paired event"
  | Some second ->
    Alcotest.(check bool) "pair is ordered" true
      (second.T.seq < v.O.first.T.seq));
  Alcotest.(check bool) "read-your-writes also broken" true
    (List.exists (fun v -> v.O.property = "read-your-writes") out.E.violations);
  let control = E.run { (E.canary_schedule ~seed:7) with E.canary = false } in
  Alcotest.(check int) "honest control is clean" 0
    (List.length control.E.violations)

let test_violation_names_a_trace () =
  (* Every op minted under a recording history carries a forced trace
     id; a violation report must surface one that resolves back into
     the history, so the flight recorder can dump the causal trace. *)
  let out = E.run (E.canary_schedule ~seed:7) in
  let v = List.hd out.E.violations in
  let id = v.O.first.T.trace in
  Alcotest.(check bool) "violation carries a trace id" true (id <> "");
  Alcotest.(check bool) "id is 128-bit lowercase hex" true
    (match Obs.Jsonx.of_hex id with
    | Some raw -> String.length raw = Obs.Span.trace_bytes
    | None -> false);
  let evs = Check.History.events out.E.history in
  Alcotest.(check bool) "trace id resolves to the op's other events" true
    (List.exists (fun e -> e.T.trace = id && e.T.seq <> v.O.first.T.seq) evs);
  let printed = O.violation_to_string v in
  Alcotest.(check bool) "report prints trace=<id>" true
    (try
       ignore (Str.search_forward (Str.regexp_string ("trace=" ^ id)) printed 0);
       true
     with Not_found -> false)

let test_canary_shrinks_to_crash () =
  let out = E.run (E.canary_schedule ~seed:11) in
  let shrunk, kept = E.shrink out in
  Alcotest.(check bool) "violation persists after shrinking" true
    (shrunk.E.violations <> []);
  Alcotest.(check (list string)) "decoy faults eliminated" [ "crash" ]
    (List.map E.category_name kept)

let test_seed_reproduces_history () =
  let a = E.run (E.schedule_of_seed 123) in
  let b = E.run (E.schedule_of_seed 123) in
  Alcotest.(check string) "history digest reproduces" a.E.history_digest
    b.E.history_digest;
  Alcotest.(check int) "messages_sent reproduces" a.E.messages_sent
    b.E.messages_sent;
  Alcotest.(check int) "bytes_sent reproduces" a.E.bytes_sent b.E.bytes_sent;
  Alcotest.(check int) "messages_dropped reproduces" a.E.messages_dropped
    b.E.messages_dropped;
  Alcotest.(check int) "ops reproduce" (a.E.ops_ok + a.E.ops_failed)
    (b.E.ops_ok + b.E.ops_failed);
  let c = E.run (E.schedule_of_seed 124) in
  Alcotest.(check bool) "different seed, different history" true
    (a.E.history_digest <> c.E.history_digest)

let test_chaos_decision_digest_deterministic () =
  let plan seed =
    Tcpnet.Chaos.plan ~drop:0.1 ~corrupt:0.05 ~reset:0.02 ~jitter:0.01 ~seed ()
  in
  let d5 = Tcpnet.Chaos.decision_digest (plan 5) ~frames:64 in
  let d5' = Tcpnet.Chaos.decision_digest (plan 5) ~frames:64 in
  let d6 = Tcpnet.Chaos.decision_digest (plan 6) ~frames:64 in
  Alcotest.(check string) "same seed, same fault schedule" d5 d5';
  Alcotest.(check bool) "different seed, different schedule" true (d5 <> d6)

(* Every signing mode — baseline, Merkle batching, MAC fast path — must
   satisfy the oracle even with a downgrading server leaking MAC-held
   writes and stripping batch proofs. *)
let test_signing_modes_clean () =
  List.iter
    (fun (label, signing) ->
      let sched =
        {
          (E.schedule_of_seed 4242) with
          E.signing;
          byzantine = [ (0, Store.Faults.Downgrade) ];
        }
      in
      let out = E.run sched in
      match out.E.violations with
      | [] -> ()
      | v :: _ ->
        Alcotest.failf "%s mode violated the oracle:\n%s" label
          (O.violation_to_string v))
    [
      ("per-write-sig", Store.Client.Per_write_sig);
      ("merkle-batch", Store.Client.Merkle_batch 4);
      ("mac-fast", Store.Client.Mac_fast);
    ]

let test_sweep_clean () =
  let count = if soak then 200 else 16 in
  let s = E.explore ~seeds:(List.init count (fun i -> 9000 + i)) in
  Alcotest.(check int) "all seeds ran" count s.E.runs;
  Alcotest.(check bool) "histories recorded" true (s.E.total_events > 0);
  match s.E.violated with
  | [] -> ()
  | o :: _ ->
    Alcotest.failf "oracle violation in %s:\n%s"
      (E.describe o.E.schedule)
      (O.violation_to_string (List.hd o.E.violations))

(* Reconfiguration schedules: the membership transitions are drawn from
   a separate random stream, so every non-reconfig field matches the
   plain schedule for the same seed (old seeds keep reproducing); and
   replaying the transitions must keep the membership valid (>= 3b+1)
   and inside the provisioned standby capacity at every step. *)
let test_reconfig_schedule_shape () =
  List.iter
    (fun seed ->
      let base = E.schedule_of_seed seed in
      let r = E.reconfig_schedule_of_seed seed in
      Alcotest.(check bool) "has transitions" true (r.E.reconfigs <> []);
      Alcotest.(check bool) "transitions time-ordered" true
        (List.sort compare (List.map fst r.E.reconfigs)
        = List.map fst r.E.reconfigs);
      Alcotest.(check bool) "base draws preserved" true
        ({ r with E.reconfigs = []; capacity = base.E.capacity } = base);
      Alcotest.(check bool) "standbys provisioned" true (r.E.capacity >= r.E.n);
      let members = ref (List.init r.E.n Fun.id) in
      List.iter
        (fun (_, rc) ->
          let next =
            match rc with
            | E.Add_server s -> List.sort_uniq compare (s :: !members)
            | E.Remove_server s -> List.filter (fun x -> x <> s) !members
            | E.Replace_server { remove; add } ->
              List.sort_uniq compare
                (add :: List.filter (fun x -> x <> remove) !members)
          in
          Alcotest.(check bool) "membership stays >= 3b+1" true
            (List.length next >= (3 * r.E.b) + 1);
          Alcotest.(check bool) "members within capacity" true
            (List.for_all (fun s -> s >= 0 && s < r.E.capacity) next);
          members := next)
        r.E.reconfigs)
    [ 11; 42; 777; 1001 ]

(* A churning run is still a deterministic run, and the oracle's seven
   properties must hold across the epoch transitions (SOAK=1 widens). *)
let test_reconfig_runs_clean () =
  let a = E.run (E.reconfig_schedule_of_seed 7100) in
  let b = E.run (E.reconfig_schedule_of_seed 7100) in
  Alcotest.(check string) "reconfig history reproduces" a.E.history_digest
    b.E.history_digest;
  let count = if soak then 40 else 8 in
  for i = 0 to count - 1 do
    let out = E.run (E.reconfig_schedule_of_seed (7000 + i)) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d produced work" (7000 + i))
      true (out.E.events > 0);
    match out.E.violations with
    | [] -> ()
    | v :: _ ->
      Alcotest.failf "reconfig schedule %s violated the oracle:\n%s"
        (E.describe out.E.schedule)
        (O.violation_to_string v)
  done

(* The coded k-of-n data path under the explorer: force dispersal on
   (every other write padded past a tiny threshold), inject whole-disk
   fragment losses, and the oracle's properties must still hold over
   the reconstructed reads — the freshness/linkage checks run against
   the reconstructed bytes, so a wrong or stale reconstruction would be
   flagged. Fragment losses beyond what repair catches only fail reads
   (liveness), which the oracle does not score. Determinism must hold
   too: the dispersal draws come from their own random stream. *)
let test_dispersal_schedules_clean () =
  let force seed =
    let s = E.schedule_of_seed seed in
    {
      s with
      E.dispersal = true;
      frag_losses = [ (0, s.E.horizon *. 0.3); (1, s.E.horizon *. 0.6) ];
    }
  in
  let a = E.run (force 5100) in
  let b = E.run (force 5100) in
  Alcotest.(check string) "dispersal history reproduces" a.E.history_digest
    b.E.history_digest;
  Alcotest.(check bool) "frag-loss category active" true
    (List.mem E.Frag_loss (E.active_categories a.E.schedule));
  Alcotest.(check bool) "disable drops the losses" true
    ((E.disable E.Frag_loss a.E.schedule).E.frag_losses = []);
  let count = if soak then 40 else 10 in
  for i = 0 to count - 1 do
    let out = E.run (force (5000 + i)) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d produced work" (5000 + i))
      true (out.E.events > 0);
    match out.E.violations with
    | [] -> ()
    | v :: _ ->
      Alcotest.failf "dispersal schedule %s violated the oracle:\n%s"
        (E.describe out.E.schedule)
        (O.violation_to_string v)
  done

let test_history_json_and_recording_guard () =
  let out = E.run (E.canary_schedule ~seed:3) in
  let json = Check.History.to_json out.E.history in
  Alcotest.(check bool) "serializes events" true
    (String.length json > 100
    && String.length (Check.History.digest out.E.history) = 64);
  let report = E.violation_report_json out in
  Alcotest.(check bool) "report carries schema and property" true
    (let has needle =
       try
         ignore (Str.search_forward (Str.regexp_string needle) report 0);
         true
       with Not_found -> false
     in
     has "check-violation-v1" && has "read-freshness");
  (* The recorder is process-global and must refuse to nest. *)
  let h = Check.History.create () in
  Check.History.recording h (fun () ->
      Alcotest.check_raises "nested recording refused"
        (Invalid_argument
           "History.recording: already recording (recorder is global)")
        (fun () -> Check.History.recording (Check.History.create ()) ignore))

(* ------------------------------------------------------------------ *)
(* Quorum arithmetic properties (sections 5 and 6)                    *)
(* ------------------------------------------------------------------ *)

(* (n, b) with 4 <= n <= 16 and 1 <= b <= max_b n. *)
let nb_arb =
  QCheck.map
    ~rev:(fun (n, b) -> (n - 4, b - 1))
    (fun (ns, bs) ->
      let n = 4 + (ns mod 13) in
      let b = 1 + (bs mod Quorums.max_b ~n) in
      (n, b))
    QCheck.(pair small_nat small_nat)

let prop_context_quorums_intersect =
  QCheck.Test.make ~name:"context quorums intersect in >= b+1" ~count:500
    nb_arb (fun (n, b) ->
      let q = Quorums.context_quorum ~n ~b in
      q <= n
      && (2 * q) - n >= b + 1
      && Quorums.context_overlap ~n ~b = (2 * q) - n
      && Quorums.validate ~n ~b = Ok ())

let prop_mw_bounds =
  QCheck.Test.make ~name:"section 5.3 multi-writer set sizes" ~count:500
    nb_arb (fun (n, b) ->
      Quorums.write_set ~b = b + 1
      && Quorums.read_set ~b = b + 1
      && Quorums.mw_write_set ~b = (2 * b) + 1
      && Quorums.mw_read_quorum ~b = (2 * b) + 1
      && Quorums.mw_vouch ~b = b + 1
      && Quorums.mw_write_set ~b <= n
      (* a masking quorum never beats the paper's context quorum *)
      && Quorums.masking_quorum ~n ~b >= Quorums.context_quorum ~n ~b
      && Quorums.majority_quorum ~n <= Quorums.context_quorum ~n ~b)

let prop_validate_rejects_beyond_max_b =
  QCheck.Test.make ~name:"validate rejects b > max_b" ~count:100
    QCheck.(map (fun ns -> 4 + (ns mod 13)) small_nat)
    (fun n ->
      let over = Quorums.max_b ~n + 1 in
      match Quorums.validate ~n ~b:over with Ok () -> false | Error _ -> true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "check"
    [
      ( "oracle",
        [
          Alcotest.test_case "clean history" `Quick test_oracle_clean;
          Alcotest.test_case "ctx-monotonic" `Quick test_oracle_ctx_monotonic;
          Alcotest.test_case "read-freshness" `Quick test_oracle_read_freshness;
          Alcotest.test_case "read-your-writes" `Quick
            test_oracle_read_your_writes;
          Alcotest.test_case "monotonic-reads" `Quick
            test_oracle_monotonic_reads;
          Alcotest.test_case "read-linkage" `Quick test_oracle_read_linkage;
          Alcotest.test_case "no-fork" `Quick test_oracle_no_fork;
          Alcotest.test_case "ctx-continuity" `Quick test_oracle_ctx_continuity;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "canary caught" `Quick test_canary_caught;
          Alcotest.test_case "violation names a trace" `Quick
            test_violation_names_a_trace;
          Alcotest.test_case "canary shrinks to crash" `Quick
            test_canary_shrinks_to_crash;
          Alcotest.test_case "seed reproduces history" `Quick
            test_seed_reproduces_history;
          Alcotest.test_case "chaos decision digest" `Quick
            test_chaos_decision_digest_deterministic;
          Alcotest.test_case "signing modes violation-free" `Quick
            test_signing_modes_clean;
          Alcotest.test_case "sweep is violation-free" `Quick test_sweep_clean;
          Alcotest.test_case "reconfig schedule shape" `Quick
            test_reconfig_schedule_shape;
          Alcotest.test_case "reconfig runs violation-free" `Quick
            test_reconfig_runs_clean;
          Alcotest.test_case "dispersal runs violation-free" `Quick
            test_dispersal_schedules_clean;
          Alcotest.test_case "history json + recording guard" `Quick
            test_history_json_and_recording_guard;
        ] );
      ( "quorums",
        [
          QCheck_alcotest.to_alcotest prop_context_quorums_intersect;
          QCheck_alcotest.to_alcotest prop_mw_bounds;
          QCheck_alcotest.to_alcotest prop_validate_rejects_beyond_max_b;
        ] );
    ]
