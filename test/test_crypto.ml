open Crypto

let check_hex msg expected raw = Alcotest.(check string) msg expected (Hexs.encode raw)

(* ------------------------------------------------------------------ *)
(* Hex                                                                *)
(* ------------------------------------------------------------------ *)

let test_hex_roundtrip () =
  Alcotest.(check string) "encode" "00ff10" (Hexs.encode "\x00\xff\x10");
  Alcotest.(check string) "decode" "\x00\xff\x10" (Hexs.decode "00ff10");
  Alcotest.(check string) "decode upper" "\xab\xcd" (Hexs.decode "ABCD");
  Alcotest.check_raises "odd length" (Invalid_argument "Hexs.decode: odd length")
    (fun () -> ignore (Hexs.decode "abc"));
  Alcotest.check_raises "bad char"
    (Invalid_argument "Hexs.decode: non-hex character") (fun () ->
      ignore (Hexs.decode "zz"))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 QCheck.string (fun s ->
      Hexs.decode (Hexs.encode s) = s)

(* ------------------------------------------------------------------ *)
(* SHA-256 (FIPS 180-4 / NIST examples)                               *)
(* ------------------------------------------------------------------ *)

let test_sha256_vectors () =
  check_hex "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest "");
  check_hex "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest "abc");
  check_hex "two-block"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha256_million_a () =
  check_hex "1M a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest (String.make 1_000_000 'a'))

let test_sha256_streaming () =
  (* Absorbing in odd-sized chunks must match the one-shot digest. *)
  let msg = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let ctx = Sha256.init () in
  let pos = ref 0 in
  let sizes = [ 1; 3; 64; 63; 65; 128; 200; 476 ] in
  List.iter
    (fun sz ->
      Sha256.update_sub ctx msg ~pos:!pos ~len:sz;
      pos := !pos + sz)
    sizes;
  assert (!pos = 1000);
  Alcotest.(check string) "streaming = one-shot" (Sha256.digest msg)
    (Sha256.finalize ctx)

let test_sha256_finalized_guard () =
  let ctx = Sha256.init () in
  ignore (Sha256.finalize ctx);
  Alcotest.check_raises "update after finalize"
    (Invalid_argument "Sha256.update_sub: finalized context") (fun () ->
      Sha256.update ctx "x")

let prop_sha256_chunking =
  QCheck.Test.make ~name:"sha256 chunked = one-shot" ~count:100
    QCheck.(pair string small_nat)
    (fun (s, cut) ->
      let cut = if String.length s = 0 then 0 else cut mod String.length s in
      let ctx = Sha256.init () in
      Sha256.update_sub ctx s ~pos:0 ~len:cut;
      Sha256.update_sub ctx s ~pos:cut ~len:(String.length s - cut);
      Sha256.finalize ctx = Sha256.digest s)

(* ------------------------------------------------------------------ *)
(* HMAC-SHA256 (RFC 4231)                                             *)
(* ------------------------------------------------------------------ *)

let test_hmac_rfc4231 () =
  (* Test case 1 *)
  check_hex "tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.sha256 ~key:(String.make 20 '\x0b') "Hi There");
  (* Test case 2 *)
  check_hex "tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.sha256 ~key:"Jefe" "what do ya want for nothing?");
  (* Test case 3: 20 x 0xaa key, 50 x 0xdd data *)
  check_hex "tc3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.sha256 ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'));
  (* Test case 6: 131-byte key (forces key hashing) *)
  check_hex "tc6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.sha256
       ~key:(String.make 131 '\xaa')
       "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_verify () =
  let key = "secret" and msg = "payload" in
  let tag = Hmac.sha256 ~key msg in
  Alcotest.(check bool) "accepts" true (Hmac.verify ~key ~msg ~tag);
  let bad = String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) tag in
  Alcotest.(check bool) "rejects flipped bit" false (Hmac.verify ~key ~msg ~tag:bad);
  Alcotest.(check bool) "rejects truncated" false
    (Hmac.verify ~key ~msg ~tag:(String.sub tag 0 16))

(* ------------------------------------------------------------------ *)
(* ChaCha20 (RFC 8439)                                                *)
(* ------------------------------------------------------------------ *)

let rfc_key =
  Hexs.decode "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"

let test_chacha20_block () =
  (* RFC 8439 section 2.3.2 *)
  let nonce = Hexs.decode "000000090000004a00000000" in
  check_hex "block"
    ("10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
   ^ "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")
    (Chacha20.block ~key:rfc_key ~nonce ~counter:1)

let test_chacha20_encrypt () =
  (* RFC 8439 section 2.4.2 *)
  let nonce = Hexs.decode "000000000000004a00000000" in
  let plaintext =
    "Ladies and Gentlemen of the class of '99: If I could offer you only \
     one tip for the future, sunscreen would be it."
  in
  let expected =
    "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
    ^ "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
    ^ "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
    ^ "5af90bbf74a35be6b40b8eedf2785e42874d"
  in
  let ct = Chacha20.encrypt ~key:rfc_key ~nonce ~counter:1 plaintext in
  check_hex "ciphertext" expected ct;
  Alcotest.(check string) "decrypt inverts" plaintext
    (Chacha20.encrypt ~key:rfc_key ~nonce ~counter:1 ct)

let prop_chacha20_involution =
  QCheck.Test.make ~name:"chacha20 encrypt twice = id" ~count:100 QCheck.string
    (fun s ->
      let key = Sha256.digest "k" and nonce = String.make 12 '\x07' in
      Chacha20.encrypt ~key ~nonce (Chacha20.encrypt ~key ~nonce s) = s)

(* ------------------------------------------------------------------ *)
(* Bignum                                                             *)
(* ------------------------------------------------------------------ *)

let bn = Alcotest.testable Bignum.pp Bignum.equal

let test_bignum_basic () =
  Alcotest.check bn "of_int 0" Bignum.zero (Bignum.of_int 0);
  Alcotest.(check (option int)) "to_int" (Some 123456789)
    (Bignum.to_int_opt (Bignum.of_int 123456789));
  Alcotest.check bn "add" (Bignum.of_int 579) (Bignum.add (Bignum.of_int 123) (Bignum.of_int 456));
  Alcotest.check bn "sub" (Bignum.of_int 333) (Bignum.sub (Bignum.of_int 456) (Bignum.of_int 123));
  Alcotest.check bn "mul"
    (Bignum.of_hex "75824cd109d898")
    (Bignum.mul (Bignum.of_int 123456789) (Bignum.of_int 267914296));
  Alcotest.check_raises "sub negative" (Invalid_argument "Bignum.sub: negative result")
    (fun () -> ignore (Bignum.sub Bignum.one Bignum.two))

let test_bignum_bytes () =
  let v = Bignum.of_hex "0123456789abcdef00ff" in
  Alcotest.(check string) "to_bytes_be" "\x01\x23\x45\x67\x89\xab\xcd\xef\x00\xff"
    (Bignum.to_bytes_be v);
  Alcotest.(check string) "padded" "\x00\x00\x01\x23\x45\x67\x89\xab\xcd\xef\x00\xff"
    (Bignum.to_bytes_be ~len:12 v);
  Alcotest.check bn "roundtrip" v (Bignum.of_bytes_be (Bignum.to_bytes_be v));
  Alcotest.check bn "leading zeros ok" v
    (Bignum.of_bytes_be ("\x00\x00" ^ Bignum.to_bytes_be v))

let test_bignum_bits () =
  Alcotest.(check int) "num_bits 0" 0 (Bignum.num_bits Bignum.zero);
  Alcotest.(check int) "num_bits 1" 1 (Bignum.num_bits Bignum.one);
  Alcotest.(check int) "num_bits 2^100" 101
    (Bignum.num_bits (Bignum.shift_left Bignum.one 100));
  let v = Bignum.of_hex "8000000000000001" in
  Alcotest.(check bool) "bit 0" true (Bignum.bit v 0);
  Alcotest.(check bool) "bit 1" false (Bignum.bit v 1);
  Alcotest.(check bool) "bit 63" true (Bignum.bit v 63);
  Alcotest.(check bool) "bit 64" false (Bignum.bit v 64)

let test_bignum_divmod () =
  let a = Bignum.of_hex "123456789abcdef0123456789abcdef" in
  let b = Bignum.of_hex "fedcba987" in
  let q, r = Bignum.divmod a b in
  Alcotest.check bn "a = q*b + r" a (Bignum.add (Bignum.mul q b) r);
  Alcotest.(check bool) "r < b" true (Bignum.compare r b < 0);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bignum.divmod a Bignum.zero))

let test_bignum_modexp_known () =
  (* 5^3 mod 13 = 8; bigger case checked against an independently computed
     value: 0x1234567^89 mod (2^89-1) *)
  Alcotest.check bn "small" (Bignum.of_int 8)
    (Bignum.modexp ~base:(Bignum.of_int 5) ~exp:(Bignum.of_int 3)
       ~modulus:(Bignum.of_int 13));
  (* Fermat: a^(p-1) = 1 mod p for prime p = 2^127 - 1 (a Mersenne prime) *)
  let p = Bignum.sub_int (Bignum.shift_left Bignum.one 127) 1 in
  let a = Bignum.of_hex "123456789abcdef" in
  Alcotest.check bn "fermat m127" Bignum.one
    (Bignum.modexp ~base:a ~exp:(Bignum.sub_int p 1) ~modulus:p);
  (* Even modulus path *)
  Alcotest.check bn "even modulus" (Bignum.of_int 4)
    (Bignum.modexp ~base:(Bignum.of_int 2) ~exp:(Bignum.of_int 10)
       ~modulus:(Bignum.of_int 12))

let test_bignum_inverse () =
  let m = Bignum.of_int 97 in
  (match Bignum.mod_inverse (Bignum.of_int 10) ~modulus:m with
  | Some inv ->
    Alcotest.check bn "10 * inv = 1 mod 97" Bignum.one
      (Bignum.rem (Bignum.mul (Bignum.of_int 10) inv) m)
  | None -> Alcotest.fail "expected inverse");
  Alcotest.(check bool) "no inverse when gcd > 1" true
    (Bignum.mod_inverse (Bignum.of_int 6) ~modulus:(Bignum.of_int 9) = None)

let sized_bignum =
  QCheck.map
    (fun (n, seed) ->
      let rng = Prng.create ~seed:(string_of_int seed) in
      Prng.bits rng (1 + (n mod 300)))
    QCheck.(pair small_nat int)

let prop_add_commutes =
  QCheck.Test.make ~name:"add commutes" ~count:200
    (QCheck.pair sized_bignum sized_bignum)
    (fun (a, b) -> Bignum.equal (Bignum.add a b) (Bignum.add b a))

let prop_mul_commutes =
  QCheck.Test.make ~name:"mul commutes" ~count:200
    (QCheck.pair sized_bignum sized_bignum)
    (fun (a, b) -> Bignum.equal (Bignum.mul a b) (Bignum.mul b a))

let prop_add_sub_roundtrip =
  QCheck.Test.make ~name:"(a+b)-b = a" ~count:200
    (QCheck.pair sized_bignum sized_bignum)
    (fun (a, b) -> Bignum.equal (Bignum.sub (Bignum.add a b) b) a)

let prop_divmod_identity =
  QCheck.Test.make ~name:"divmod identity" ~count:200
    (QCheck.pair sized_bignum sized_bignum)
    (fun (a, b) ->
      QCheck.assume (not (Bignum.is_zero b));
      let q, r = Bignum.divmod a b in
      Bignum.equal a (Bignum.add (Bignum.mul q b) r) && Bignum.compare r b < 0)

let prop_shift_roundtrip =
  QCheck.Test.make ~name:"shift left/right roundtrip" ~count:200
    (QCheck.pair sized_bignum QCheck.small_nat)
    (fun (a, k) ->
      let k = k mod 100 in
      Bignum.equal (Bignum.shift_right (Bignum.shift_left a k) k) a)

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes roundtrip" ~count:200 sized_bignum (fun a ->
      Bignum.equal a (Bignum.of_bytes_be (Bignum.to_bytes_be a)))

let prop_modexp_matches_naive =
  QCheck.Test.make ~name:"montgomery modexp = naive modmul" ~count:50
    (QCheck.triple sized_bignum QCheck.small_nat QCheck.small_nat)
    (fun (m, b, e) ->
      let m = Bignum.add_int m 1 in
      let m = if Bignum.is_even m then Bignum.add_int m 1 else m in
      QCheck.assume (Bignum.compare m Bignum.one > 0);
      let base = Bignum.of_int (b + 2) in
      let exp = e mod 40 in
      let naive = ref Bignum.one in
      for _ = 1 to exp do
        naive := Bignum.rem (Bignum.mul !naive base) m
      done;
      Bignum.equal !naive
        (Bignum.modexp ~base ~exp:(Bignum.of_int exp) ~modulus:m))

(* The windowed Montgomery path must agree with textbook binary
   square-and-multiply for multi-window exponents (the existing naive
   property only exercises exponents below one window). *)
let prop_windowed_modexp_matches_binary =
  QCheck.Test.make ~name:"windowed modexp = binary square-multiply" ~count:30
    (QCheck.triple sized_bignum sized_bignum QCheck.int)
    (fun (m, exp, seed) ->
      let m = Bignum.add_int m 3 in
      let m = if Bignum.is_even m then Bignum.add_int m 1 else m in
      let rng = Prng.create ~seed:("win-" ^ string_of_int seed) in
      let base = Prng.bits rng 200 in
      let reduced = Bignum.rem base m in
      let naive = ref Bignum.one in
      for i = Bignum.num_bits exp - 1 downto 0 do
        naive := Bignum.rem (Bignum.mul !naive !naive) m;
        if Bignum.bit exp i then naive := Bignum.rem (Bignum.mul !naive reduced) m
      done;
      Bignum.equal !naive (Bignum.modexp ~base ~exp ~modulus:m))

let test_mont_ctx_api () =
  let m = Bignum.of_hex "fffffffffffffffffffffffffffffffeffffffffffffffff" in
  let ctx = Bignum.mont_of_modulus m in
  Alcotest.check bn "modulus roundtrips" m (Bignum.mont_modulus ctx);
  Alcotest.(check bool) "context is cached" true
    (ctx == Bignum.mont_of_modulus m);
  let base = Bignum.of_hex "123456789abcdef0123456789abcdef" in
  let exp = Bignum.of_hex "deadbeefcafe" in
  Alcotest.check bn "ctx modexp = modexp"
    (Bignum.modexp ~base ~exp ~modulus:m)
    (Bignum.mont_modexp_ctx ctx ~base ~exp);
  Alcotest.check bn "exp 0" Bignum.one
    (Bignum.mont_modexp_ctx ctx ~base ~exp:Bignum.zero);
  Alcotest.check_raises "even modulus rejected"
    (Invalid_argument "Bignum.mont_of_modulus: modulus must be odd") (fun () ->
      ignore (Bignum.mont_of_modulus (Bignum.of_int 10)))

let prop_mod_int_matches =
  QCheck.Test.make ~name:"mod_int = rem" ~count:200
    (QCheck.pair sized_bignum QCheck.small_nat)
    (fun (a, m) ->
      let m = m + 1 in
      Bignum.mod_int a m = Option.get (Bignum.to_int_opt (Bignum.rem a (Bignum.of_int m))))


let test_bignum_more_edges () =
  (* exponent 0, modulus 1, base 0 *)
  Alcotest.check bn "x^0 = 1" Bignum.one
    (Bignum.modexp ~base:(Bignum.of_int 7) ~exp:Bignum.zero ~modulus:(Bignum.of_int 13));
  Alcotest.check bn "mod 1 = 0" Bignum.zero
    (Bignum.modexp ~base:(Bignum.of_int 7) ~exp:(Bignum.of_int 5) ~modulus:Bignum.one);
  Alcotest.check bn "0^k = 0" Bignum.zero
    (Bignum.modexp ~base:Bignum.zero ~exp:(Bignum.of_int 5) ~modulus:(Bignum.of_int 13));
  Alcotest.check_raises "modexp mod 0" Division_by_zero (fun () ->
      ignore (Bignum.modexp ~base:Bignum.one ~exp:Bignum.one ~modulus:Bignum.zero));
  (* odd-length hex is zero-padded *)
  Alcotest.check bn "odd hex" (Bignum.of_int 0xabc) (Bignum.of_hex "abc");
  Alcotest.check_raises "to_bytes too small"
    (Invalid_argument "Bignum.to_bytes_be: value too large") (fun () ->
      ignore (Bignum.to_bytes_be ~len:1 (Bignum.of_int 70000)));
  (* gcd / inverse edge: inverse of 1 mod anything is 1 *)
  Alcotest.(check bool) "inv 1" true
    (Bignum.mod_inverse Bignum.one ~modulus:(Bignum.of_int 97) = Some Bignum.one);
  Alcotest.check bn "gcd(0, x) = x" (Bignum.of_int 42)
    (Bignum.gcd Bignum.zero (Bignum.of_int 42))

let test_prng_edges () =
  let rng = Prng.create ~seed:"edges" in
  Alcotest.(check bool) "bits 0 = zero" true (Bignum.is_zero (Prng.bits rng 0));
  Alcotest.(check int) "bits 1 in range" 0 (Bignum.num_bits (Prng.bits rng 1) / 2);
  Alcotest.check_raises "int_below 0"
    (Invalid_argument "Prng.int_below: non-positive bound") (fun () ->
      ignore (Prng.int_below rng 0))

(* ------------------------------------------------------------------ *)
(* PRNG                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:"seed" and b = Prng.create ~seed:"seed" in
  Alcotest.(check string) "same stream" (Prng.bytes a 100) (Prng.bytes b 100);
  let c = Prng.create ~seed:"other" in
  Alcotest.(check bool) "different seed, different stream" false
    (Prng.bytes (Prng.create ~seed:"seed") 100 = Prng.bytes c 100)

let test_prng_int_below () =
  let rng = Prng.create ~seed:"ranges" in
  for _ = 1 to 1000 do
    let v = Prng.int_below rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
  done;
  Alcotest.(check int) "bound 1" 0 (Prng.int_below rng 1)

let test_prng_split_independent () =
  let rng = Prng.create ~seed:"root" in
  let a = Prng.split rng ~label:"a" and b = Prng.split rng ~label:"b" in
  Alcotest.(check bool) "split streams differ" false
    (Prng.bytes a 64 = Prng.bytes b 64)

let test_prng_float_unit () =
  let rng = Prng.create ~seed:"floats" in
  for _ = 1 to 1000 do
    let f = Prng.float_unit rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "out of range: %f" f
  done

(* ------------------------------------------------------------------ *)
(* Primes                                                             *)
(* ------------------------------------------------------------------ *)

let test_small_primes_table () =
  Alcotest.(check int) "first prime" 2 Prime.small_primes.(0);
  Alcotest.(check bool) "contains 1999" true (Array.mem 1999 Prime.small_primes);
  Alcotest.(check bool) "no 1998" false (Array.mem 1998 Prime.small_primes)

let test_known_primes () =
  let rng = Prng.create ~seed:"mr" in
  let prime_hexes =
    [
      "7fffffffffffffffffffffffffffffff"; (* 2^127 - 1 *)
      "fffffffffffffffffffffffffffffffeffffffffffffffff"; (* p192 field *)
    ]
  in
  List.iter
    (fun h ->
      Alcotest.(check bool) (h ^ " is prime") true
        (Prime.is_probably_prime rng (Bignum.of_hex h)))
    prime_hexes;
  let composites = [ "7ffffffffffffffffffffffffffffffd"; "04"; "00" ] in
  List.iter
    (fun h ->
      Alcotest.(check bool) (h ^ " is composite") false
        (Prime.is_probably_prime rng (Bignum.of_hex h)))
    composites

let test_carmichael_rejected () =
  (* 561, 41041 and a larger Carmichael number fool Fermat but not MR. *)
  let rng = Prng.create ~seed:"carmichael" in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (string_of_int v ^ " rejected")
        false
        (Prime.is_probably_prime rng (Bignum.of_int v)))
    [ 561; 1105; 41041; 825265 ]

let test_generate_prime () =
  let rng = Prng.create ~seed:"gen" in
  let p = Prime.generate rng ~bits:128 in
  Alcotest.(check int) "exact width" 128 (Bignum.num_bits p);
  Alcotest.(check bool) "odd" false (Bignum.is_even p);
  Alcotest.(check bool) "probably prime" true (Prime.is_probably_prime rng p);
  Alcotest.(check bool) "second-highest bit set" true (Bignum.bit p 126)

(* ------------------------------------------------------------------ *)
(* RSA                                                                *)
(* ------------------------------------------------------------------ *)

let test_rsa_sign_verify () =
  let rng = Prng.create ~seed:"rsa-keys" in
  let key = Rsa.generate ~bits:512 rng in
  let msg = "the quick brown fox" in
  let signature = Rsa.sign key msg in
  Alcotest.(check int) "signature width" 64 (String.length signature);
  Alcotest.(check bool) "verifies" true
    (Rsa.verify key.public ~msg ~signature);
  Alcotest.(check bool) "wrong message rejected" false
    (Rsa.verify key.public ~msg:"tampered" ~signature);
  let flipped =
    String.mapi
      (fun i c -> if i = 10 then Char.chr (Char.code c lxor 0x40) else c)
      signature
  in
  Alcotest.(check bool) "corrupt signature rejected" false
    (Rsa.verify key.public ~msg ~signature:flipped);
  Alcotest.(check bool) "short signature rejected" false
    (Rsa.verify key.public ~msg ~signature:(String.sub signature 0 32))

let test_rsa_cross_key () =
  let rng = Prng.create ~seed:"rsa-two" in
  let k1 = Rsa.generate ~bits:512 rng in
  let k2 = Rsa.generate ~bits:512 rng in
  let signature = Rsa.sign k1 "msg" in
  Alcotest.(check bool) "other key rejects" false
    (Rsa.verify k2.public ~msg:"msg" ~signature)

let test_rsa_key_internal_consistency () =
  let rng = Prng.create ~seed:"rsa-consistency" in
  let key = Rsa.generate ~bits:512 rng in
  Alcotest.check bn "n = p*q" key.public.n (Bignum.mul key.p key.q);
  let phi = Bignum.(mul (sub_int key.p 1) (sub_int key.q 1)) in
  Alcotest.check bn "e*d = 1 mod phi" Bignum.one
    (Bignum.rem (Bignum.mul key.public.e key.d) phi);
  Alcotest.(check int) "modulus width" 512 (Bignum.num_bits key.public.n)

(* CRT signing is an internal optimization: its signatures must be
   byte-identical to the single-exponentiation path. *)
let crt_test_key =
  lazy (Rsa.generate ~bits:512 (Prng.create ~seed:"rsa-crt"))

let test_rsa_crt_matches_plain () =
  let key = Lazy.force crt_test_key in
  Alcotest.(check bool) "generate fills crt" true (key.crt <> None);
  let plain = { key with crt = None } in
  List.iter
    (fun msg ->
      let s_crt = Rsa.sign key msg in
      Alcotest.(check string) ("crt = plain: " ^ msg) (Rsa.sign plain msg) s_crt;
      Alcotest.(check bool) ("verifies: " ^ msg) true
        (Rsa.verify key.public ~msg ~signature:s_crt))
    [ ""; "x"; "the quick brown fox"; String.make 1000 'z' ];
  (* precompute_crt on an existing plain key restores the fast path. *)
  match Rsa.precompute_crt ~d:key.d ~p:key.p ~q:key.q with
  | None -> Alcotest.fail "precompute_crt failed for distinct primes"
  | Some crt ->
    Alcotest.(check string) "recomputed crt signs identically"
      (Rsa.sign plain "m") (Rsa.sign { plain with crt = Some crt } "m")

let prop_rsa_crt_roundtrip =
  QCheck.Test.make ~name:"rsa crt sign/verify roundtrip" ~count:15
    QCheck.string (fun msg ->
      let key = Lazy.force crt_test_key in
      let signature = Rsa.sign key msg in
      signature = Rsa.sign { key with crt = None } msg
      && Rsa.verify key.public ~msg ~signature
      && not (Rsa.verify key.public ~msg:(msg ^ "!") ~signature))

let test_rsa_public_serialization () =
  let rng = Prng.create ~seed:"rsa-serde" in
  let key = Rsa.generate ~bits:512 rng in
  let s = Rsa.public_to_string key.public in
  (match Rsa.public_of_string s with
  | Some pub ->
    Alcotest.check bn "n roundtrips" key.public.n pub.n;
    Alcotest.check bn "e roundtrips" key.public.e pub.e
  | None -> Alcotest.fail "deserialization failed");
  Alcotest.(check bool) "garbage rejected" true (Rsa.public_of_string "nope" = None);
  Alcotest.(check int) "fingerprint length" 16
    (String.length (Rsa.fingerprint key.public))

(* ------------------------------------------------------------------ *)
(* AEAD                                                               *)
(* ------------------------------------------------------------------ *)

let test_aead_roundtrip () =
  let key = Aead.key_of_string "master secret" in
  let rng = Prng.create ~seed:"nonces" in
  let nonce = Aead.random_nonce rng in
  let blob = Aead.encrypt key ~nonce ~ad:"hdr" "confidential medical record" in
  Alcotest.(check (option string)) "decrypts" (Some "confidential medical record")
    (Aead.decrypt key ~ad:"hdr" blob);
  Alcotest.(check (option string)) "wrong ad fails" None
    (Aead.decrypt key ~ad:"other" blob);
  Alcotest.(check (option string)) "wrong key fails" None
    (Aead.decrypt (Aead.key_of_string "other") ~ad:"hdr" blob);
  let tampered =
    String.mapi
      (fun i c -> if i = String.length blob - 40 then Char.chr (Char.code c lxor 1) else c)
      blob
  in
  Alcotest.(check (option string)) "tamper detected" None
    (Aead.decrypt key ~ad:"hdr" tampered);
  Alcotest.(check (option string)) "truncated rejected" None
    (Aead.decrypt key ~ad:"hdr" (String.sub blob 0 20))

let prop_aead_roundtrip =
  QCheck.Test.make ~name:"aead roundtrip" ~count:100
    QCheck.(pair string string)
    (fun (secret, pt) ->
      let key = Aead.key_of_string secret in
      let nonce = String.make 12 '\x01' in
      Aead.decrypt key (Aead.encrypt key ~nonce pt) = Some pt)

(* ------------------------------------------------------------------ *)
(* Merkle                                                             *)
(* ------------------------------------------------------------------ *)

let test_merkle_empty_and_single () =
  let empty = Merkle.of_leaves [] in
  let single = Merkle.of_leaves [ "only" ] in
  Alcotest.(check int) "empty size" 0 (Merkle.size empty);
  Alcotest.(check bool) "roots differ" false (Merkle.root empty = Merkle.root single);
  Alcotest.(check bool) "no proof in empty" true (Merkle.prove empty 0 = None)

let test_merkle_proofs () =
  let leaves = List.init 7 (fun i -> Printf.sprintf "leaf-%d" i) in
  let tree = Merkle.of_leaves leaves in
  let root = Merkle.root tree in
  List.iteri
    (fun i leaf ->
      match Merkle.prove tree i with
      | None -> Alcotest.failf "no proof for %d" i
      | Some proof ->
        Alcotest.(check bool) (Printf.sprintf "proof %d verifies" i) true
          (Merkle.verify ~root ~size:7 ~leaf proof);
        Alcotest.(check bool) (Printf.sprintf "proof %d rejects other leaf" i) false
          (Merkle.verify ~root ~size:7 ~leaf:"forged" proof))
    leaves;
  Alcotest.(check bool) "out of range" true (Merkle.prove tree 7 = None)

let test_merkle_root_changes_with_leaves () =
  let t1 = Merkle.of_leaves [ "a"; "b"; "c" ] in
  let t2 = Merkle.of_leaves [ "a"; "b"; "d" ] in
  let t3 = Merkle.of_leaves [ "a"; "b" ] in
  Alcotest.(check bool) "leaf change" false (Merkle.root t1 = Merkle.root t2);
  Alcotest.(check bool) "leaf count" false (Merkle.root t1 = Merkle.root t3)

let prop_merkle_all_proofs_verify =
  QCheck.Test.make ~name:"merkle proofs verify" ~count:50
    QCheck.(list_of_size Gen.(1 -- 33) string)
    (fun leaves ->
      let tree = Merkle.of_leaves leaves in
      let root = Merkle.root tree in
      let size = Merkle.size tree in
      List.for_all
        (fun i ->
          match Merkle.prove tree i with
          | None -> false
          | Some proof ->
            Merkle.verify ~root ~size ~leaf:(List.nth leaves i) proof)
        (List.init (List.length leaves) Fun.id))

(* The size-aware verifier recomputes the expected proof shape from
   (size, index), so every structural mutation — wrong index, stripped
   path element, swapped sibling side, corrupted root — must fail, even
   when all leaves are identical (where content alone could not tell
   positions apart). *)
let prop_merkle_mutations_rejected =
  QCheck.Test.make ~name:"merkle mutated proofs rejected" ~count:100
    QCheck.(pair (list_of_size Gen.(2 -- 33) string) (int_bound 10_000))
    (fun (leaves, salt) ->
      let tree = Merkle.of_leaves leaves in
      let root = Merkle.root tree in
      let size = Merkle.size tree in
      let i = salt mod size in
      match Merkle.prove tree i with
      | None -> false
      | Some proof ->
        let leaf = List.nth leaves i in
        let ok = Merkle.verify ~root ~size ~leaf proof in
        let wrong_index =
          Merkle.verify ~root ~size ~leaf
            { proof with Merkle.index = (i + 1) mod size }
        in
        let stripped =
          match proof.Merkle.path with
          | [] -> false (* size >= 2: never empty *)
          | _ :: rest ->
            Merkle.verify ~root ~size ~leaf { proof with Merkle.path = rest }
        in
        let swapped =
          match proof.Merkle.path with
          | [] -> false
          | (h, side) :: rest ->
            let side = match side with `Left -> `Right | `Right -> `Left in
            Merkle.verify ~root ~size ~leaf
              { proof with Merkle.path = (h, side) :: rest }
        in
        let bad_root =
          let b = Bytes.of_string root in
          Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
          Merkle.verify ~root:(Bytes.to_string b) ~size ~leaf proof
        in
        ok && (not wrong_index) && (not stripped) && (not swapped)
        && not bad_root)

(* ------------------------------------------------------------------ *)
(* GF(256) and polynomials                                            *)
(* ------------------------------------------------------------------ *)

let test_gf256_axioms () =
  (* AES's canonical example: 0x53 * 0xCA = 0x01 (they are inverses). *)
  Alcotest.(check int) "known product" 0x01 (Gf256.mul 0x53 0xca);
  Alcotest.(check int) "mul identity" 0x57 (Gf256.mul 0x57 1);
  Alcotest.(check int) "mul zero" 0 (Gf256.mul 0x57 0);
  Alcotest.(check int) "add self cancels" 0 (Gf256.add 0xab 0xab);
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Gf256.inv 0));
  for a = 1 to 255 do
    if Gf256.mul a (Gf256.inv a) <> 1 then Alcotest.failf "inv broken at %d" a
  done

let prop_gf256_mul_assoc_comm =
  QCheck.Test.make ~name:"gf256 mul associative+commutative" ~count:300
    QCheck.(triple (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (a, b, c) ->
      Gf256.mul a b = Gf256.mul b a
      && Gf256.mul a (Gf256.mul b c) = Gf256.mul (Gf256.mul a b) c)

let prop_gf256_distributive =
  QCheck.Test.make ~name:"gf256 distributive" ~count:300
    QCheck.(triple (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (a, b, c) ->
      Gf256.mul a (Gf256.add b c) = Gf256.add (Gf256.mul a b) (Gf256.mul a c))

let prop_gf256_pow =
  QCheck.Test.make ~name:"gf256 pow = repeated mul" ~count:200
    QCheck.(pair (int_bound 255) (int_bound 10))
    (fun (a, k) ->
      let naive = ref 1 in
      for _ = 1 to k do
        naive := Gf256.mul !naive a
      done;
      Gf256.pow a k = !naive)

let test_gf_poly_interpolate () =
  (* p(x) = 7 + 3x + x^2 over GF(256). *)
  let p = [| 7; 3; 1 |] in
  let points = List.map (fun x -> (x, Gf_poly.eval p x)) [ 1; 2; 3 ] in
  Alcotest.(check (array int)) "coefficients recovered" p (Gf_poly.interpolate points);
  Alcotest.(check int) "interpolate_at matches" (Gf_poly.eval p 0)
    (Gf_poly.interpolate_at points 0);
  Alcotest.check_raises "duplicate x" (Invalid_argument "Gf_poly: duplicate x values")
    (fun () -> ignore (Gf_poly.interpolate [ (1, 2); (1, 3) ]))

let prop_gf_poly_roundtrip =
  QCheck.Test.make ~name:"interpolate(eval) = id" ~count:200
    QCheck.(list_of_size Gen.(1 -- 8) (int_bound 255))
    (fun coeffs ->
      let p = Array.of_list coeffs in
      let k = Array.length p in
      let points = List.init k (fun i -> (i + 1, Gf_poly.eval p (i + 1))) in
      let q = Gf_poly.interpolate points in
      (* Compare as polynomials: same evaluations everywhere relevant. *)
      List.for_all (fun x -> Gf_poly.eval p x = Gf_poly.eval q x)
        (List.init 20 (fun i -> i)))

(* ------------------------------------------------------------------ *)
(* Shamir                                                             *)
(* ------------------------------------------------------------------ *)

let test_shamir_roundtrip () =
  let rng = Prng.create ~seed:"shamir" in
  let secret = "the family master key 0123456789" in
  let shares = Shamir.split rng ~threshold:3 ~shares:5 secret in
  Alcotest.(check int) "five shares" 5 (List.length shares);
  (* Any 3 reconstruct. *)
  let subsets = [ [ 0; 1; 2 ]; [ 0; 2; 4 ]; [ 2; 3; 4 ]; [ 4; 1; 3 ] ] in
  List.iter
    (fun idxs ->
      let picked = List.map (List.nth shares) idxs in
      Alcotest.(check (option string)) "reconstructs" (Some secret)
        (Shamir.combine ~threshold:3 picked))
    subsets;
  (* 2 shares are not enough. *)
  Alcotest.(check (option string)) "threshold enforced" None
    (Shamir.combine ~threshold:3 [ List.nth shares 0; List.nth shares 1 ]);
  (* Duplicate share does not help. *)
  Alcotest.(check (option string)) "duplicates rejected" None
    (Shamir.combine ~threshold:3
       [ List.nth shares 0; List.nth shares 0; List.nth shares 1 ])

let test_shamir_share_serde () =
  let rng = Prng.create ~seed:"shamir-serde" in
  let shares = Shamir.split rng ~threshold:2 ~shares:3 "secret" in
  List.iter
    (fun s ->
      match Shamir.share_of_string (Shamir.share_to_string s) with
      | Some s' ->
        Alcotest.(check int) "x" s.Shamir.x s'.Shamir.x;
        Alcotest.(check string) "data" s.Shamir.data s'.Shamir.data
      | None -> Alcotest.fail "serde failed")
    shares;
  Alcotest.(check bool) "empty rejected" true (Shamir.share_of_string "" = None)

let prop_shamir_roundtrip =
  QCheck.Test.make ~name:"shamir any-k-of-n roundtrip" ~count:60
    QCheck.(triple string (int_range 1 5) (int_range 0 4))
    (fun (secret, threshold, extra) ->
      let shares_n = threshold + extra in
      let rng = Prng.create ~seed:(secret ^ "|" ^ string_of_int shares_n) in
      let shares = Shamir.split rng ~threshold ~shares:shares_n secret in
      (* Take the *last* threshold shares (not just the first ones). *)
      let picked =
        List.filteri (fun i _ -> i >= shares_n - threshold) shares
      in
      Shamir.combine ~threshold picked = Some secret)

(* ------------------------------------------------------------------ *)
(* Information dispersal                                              *)
(* ------------------------------------------------------------------ *)

let test_ida_roundtrip () =
  let value = String.init 1000 (fun i -> Char.chr (i * 7 mod 256)) in
  let frags = Ida.split ~k:3 ~n:7 value in
  Alcotest.(check int) "seven fragments" 7 (List.length frags);
  (* Fragment size ~ |value|/k. *)
  let frag = List.hd frags in
  Alcotest.(check int) "fragment size" ((1000 + 2) / 3) (String.length frag.Ida.data);
  let subsets = [ [ 0; 1; 2 ]; [ 4; 5; 6 ]; [ 0; 3; 6 ]; [ 6; 2; 4 ] ] in
  List.iter
    (fun idxs ->
      let picked = List.map (List.nth frags) idxs in
      Alcotest.(check (option string)) "reconstructs" (Some value)
        (Ida.reconstruct ~k:3 picked))
    subsets;
  Alcotest.(check (option string)) "k-1 insufficient" None
    (Ida.reconstruct ~k:3 [ List.nth frags 0; List.nth frags 1 ])

let test_ida_edge_cases () =
  (* Empty value. *)
  let frags = Ida.split ~k:2 ~n:3 "" in
  Alcotest.(check (option string)) "empty roundtrip" (Some "")
    (Ida.reconstruct ~k:2 frags);
  (* Value shorter than k. *)
  let frags = Ida.split ~k:4 ~n:5 "ab" in
  Alcotest.(check (option string)) "short roundtrip" (Some "ab")
    (Ida.reconstruct ~k:4 frags);
  (* k = 1 degenerates to replication. *)
  let frags = Ida.split ~k:1 ~n:3 "solo" in
  Alcotest.(check (option string)) "k=1" (Some "solo")
    (Ida.reconstruct ~k:1 [ List.nth frags 2 ]);
  Alcotest.check_raises "bad k" (Invalid_argument "Ida.split: need 1 <= k <= n <= 255")
    (fun () -> ignore (Ida.split ~k:5 ~n:3 "x"))

let test_ida_fragment_serde () =
  let frags = Ida.split ~k:2 ~n:3 "some data here" in
  List.iter
    (fun f ->
      match Ida.fragment_of_string (Ida.fragment_to_string f) with
      | Some f' -> Alcotest.(check bool) "serde" true (f = f')
      | None -> Alcotest.fail "serde failed")
    frags;
  Alcotest.(check bool) "short rejected" true (Ida.fragment_of_string "abc" = None)

let prop_ida_roundtrip =
  QCheck.Test.make ~name:"ida any-k-of-n roundtrip" ~count:60
    QCheck.(triple string (int_range 1 6) (int_range 0 5))
    (fun (value, k, extra) ->
      let n = k + extra in
      let frags = Ida.split ~k ~n value in
      let picked = List.filteri (fun i _ -> i >= n - k) frags in
      Ida.reconstruct ~k picked = Some value)

let prop_ida_stripe_roundtrip =
  QCheck.Test.make ~name:"ida stripe any-k-of-n roundtrip" ~count:120
    QCheck.(triple (string_of_size Gen.(0 -- 200)) (int_range 1 6) (int_range 0 5))
    (fun (value, k, extra) ->
      let n = k + extra in
      let len = String.length value in
      let width = if len = 0 then 0 else (len + k - 1) / k in
      let pieces = Ida.split_stripe ~k ~n value in
      let indexed = Array.to_list (Array.mapi (fun i p -> (i + 1, p)) pieces) in
      let picked = List.filteri (fun i _ -> i >= n - k) indexed in
      Array.length pieces = n
      && Array.for_all (fun p -> String.length p = width) pieces
      && Ida.reconstruct_stripe ~k ~len picked = Some value
      && Ida.reconstruct_stripe ~k ~len indexed = Some value)

let prop_ida_stripe_insufficient =
  QCheck.Test.make ~name:"ida stripe k-1 pieces fail" ~count:60
    QCheck.(pair (string_of_size Gen.(1 -- 120)) (int_range 2 6))
    (fun (value, k) ->
      let pieces = Ida.split_stripe ~k ~n:(k + 2) value in
      let indexed = Array.to_list (Array.mapi (fun i p -> (i + 1, p)) pieces) in
      let few = List.filteri (fun i _ -> i < k - 1) indexed in
      Ida.reconstruct_stripe ~k ~len:(String.length value) few = None)

let prop_ida_stripe_streaming_equiv =
  (* Encoding stripe by stripe and concatenating the pieces per index,
     then decoding stripe by stripe from any k of the concatenated
     streams, reproduces the value — the invariant the chunked live
     transport relies on. *)
  QCheck.Test.make ~name:"ida striping streams" ~count:60
    QCheck.(pair (string_of_size Gen.(0 -- 300)) (int_range 1 4))
    (fun (value, k) ->
      let n = k + 2 in
      let stripe = k * 8 in
      let len = String.length value in
      let bufs = Array.init n (fun _ -> Buffer.create 64) in
      let off = ref 0 in
      while !off < len do
        let l = min stripe (len - !off) in
        let pieces = Ida.split_stripe ~k ~n (String.sub value !off l) in
        Array.iteri (fun i p -> Buffer.add_string bufs.(i) p) pieces;
        off := !off + l
      done;
      let out = Buffer.create len in
      let good = ref true in
      let foff = ref 0 and voff = ref 0 in
      while !voff < len && !good do
        let l = min stripe (len - !voff) in
        let width = (l + k - 1) / k in
        let pieces =
          (* decode from the LAST k streams: any k indices must do *)
          List.init k (fun j ->
              let i = n - k + j in
              (i + 1, Buffer.sub bufs.(i) !foff width))
        in
        (match Ida.reconstruct_stripe ~k ~len:l pieces with
        | Some s -> Buffer.add_string out s
        | None -> good := false);
        foff := !foff + width;
        voff := !voff + l
      done;
      !good && Buffer.contents out = value)

(* ------------------------------------------------------------------ *)
(* Key tree (LKH group key management)                                *)
(* ------------------------------------------------------------------ *)

let leaf_key_of name = Sha256.digest ("leaf:" ^ name)

let test_keytree_join_and_agree () =
  let mgr = Keytree.create_manager ~capacity:8 ~seed:"kt" in
  let names = [ "a"; "b"; "c"; "d"; "e" ] in
  let views =
    List.map
      (fun name -> Keytree.create_member ~name ~leaf_key:(leaf_key_of name))
      names
  in
  (* Each join broadcast goes to everyone (including earlier members). *)
  List.iter
    (fun name ->
      let msgs = Keytree.join mgr ~name ~leaf_key:(leaf_key_of name) in
      List.iter (fun v -> Keytree.apply v msgs) views)
    names;
  let gk = Keytree.group_key mgr in
  List.iter2
    (fun name view ->
      Alcotest.(check (option string)) (name ^ " has the group key") (Some gk)
        (Keytree.member_group_key view))
    names views;
  Alcotest.(check int) "member count" 5 (List.length (Keytree.members mgr))

let test_keytree_eviction () =
  let mgr = Keytree.create_manager ~capacity:8 ~seed:"kt2" in
  let names = [ "a"; "b"; "c"; "d" ] in
  let views =
    List.map (fun n -> (n, Keytree.create_member ~name:n ~leaf_key:(leaf_key_of n))) names
  in
  List.iter
    (fun n ->
      let msgs = Keytree.join mgr ~name:n ~leaf_key:(leaf_key_of n) in
      List.iter (fun (_, v) -> Keytree.apply v msgs) views)
    names;
  let old_key = Keytree.group_key mgr in
  let msgs = Keytree.leave mgr ~name:"b" in
  List.iter (fun (_, v) -> Keytree.apply v msgs) views;
  let new_key = Keytree.group_key mgr in
  Alcotest.(check bool) "key rotated" false (old_key = new_key);
  List.iter
    (fun (n, v) ->
      if n = "b" then
        Alcotest.(check bool) "evicted member locked out" false
          (Keytree.member_group_key v = Some new_key)
      else
        Alcotest.(check (option string)) (n ^ " follows rotation") (Some new_key)
          (Keytree.member_group_key v))
    views;
  Alcotest.check_raises "unknown member" Not_found (fun () ->
      ignore (Keytree.leave mgr ~name:"nobody"))

let test_keytree_backward_secrecy () =
  (* A member joining later never learns keys distributed before it:
     join re-keys the path, so the pre-join group key stays unknown. *)
  let mgr = Keytree.create_manager ~capacity:4 ~seed:"kt3" in
  ignore (Keytree.join mgr ~name:"a" ~leaf_key:(leaf_key_of "a"));
  let old_key = Keytree.group_key mgr in
  let late = Keytree.create_member ~name:"z" ~leaf_key:(leaf_key_of "z") in
  let msgs = Keytree.join mgr ~name:"z" ~leaf_key:(leaf_key_of "z") in
  Keytree.apply late msgs;
  Alcotest.(check bool) "new key learned" true
    (Keytree.member_group_key late = Some (Keytree.group_key mgr));
  Alcotest.(check bool) "old key not learned" false
    (Keytree.member_group_key late = Some old_key)

let test_keytree_log_n_messages () =
  let capacity = 64 in
  let mgr = Keytree.create_manager ~capacity ~seed:"kt4" in
  for i = 1 to capacity do
    ignore (Keytree.join mgr ~name:(string_of_int i) ~leaf_key:(leaf_key_of (string_of_int i)))
  done;
  let msgs = Keytree.leave mgr ~name:"17" in
  (* A full binary tree of 64 leaves has depth 6: at most 2 messages per
     re-keyed level — O(log n), not O(n). *)
  Alcotest.(check bool)
    (Printf.sprintf "rekey broadcast is %d msgs <= 12" (List.length msgs))
    true
    (List.length msgs <= 12)

let test_keytree_capacity () =
  let mgr = Keytree.create_manager ~capacity:2 ~seed:"kt5" in
  ignore (Keytree.join mgr ~name:"a" ~leaf_key:"ka");
  ignore (Keytree.join mgr ~name:"b" ~leaf_key:"kb");
  Alcotest.check_raises "full" (Invalid_argument "Keytree.join: group full")
    (fun () -> ignore (Keytree.join mgr ~name:"c" ~leaf_key:"kc"));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Keytree.join: member already present: a") (fun () ->
      ignore (Keytree.join mgr ~name:"a" ~leaf_key:"ka"))

let prop_keytree_random_churn =
  QCheck.Test.make ~name:"keytree agreement under random churn" ~count:25
    QCheck.(list_of_size Gen.(5 -- 40) (pair bool (int_bound 7)))
    (fun ops ->
      let mgr = Keytree.create_manager ~capacity:8 ~seed:"churn" in
      let pool = Array.init 8 (fun i -> "m" ^ string_of_int i) in
      let views = Hashtbl.create 8 in
      let current = Hashtbl.create 8 in
      let broadcast msgs =
        Hashtbl.iter (fun _ v -> Keytree.apply v msgs) views
      in
      List.iter
        (fun (join, idx) ->
          let name = pool.(idx) in
          if join && not (Hashtbl.mem current name) then begin
            if not (Hashtbl.mem views name) then
              Hashtbl.replace views name
                (Keytree.create_member ~name ~leaf_key:(leaf_key_of name));
            (* A rejoining member must not reuse stale state. *)
            Hashtbl.replace views name
              (Keytree.create_member ~name ~leaf_key:(leaf_key_of name));
            broadcast (Keytree.join mgr ~name ~leaf_key:(leaf_key_of name));
            Hashtbl.replace current name ()
          end
          else if (not join) && Hashtbl.mem current name then begin
            broadcast (Keytree.leave mgr ~name);
            Hashtbl.remove current name
          end)
        ops;
      let gk = Keytree.group_key mgr in
      Hashtbl.fold
        (fun name () acc ->
          acc && Keytree.member_group_key (Hashtbl.find views name) = Some gk)
        current true)

let qsuite props = List.map QCheck_alcotest.to_alcotest props

let () =
  Alcotest.run "crypto"
    [
      ( "hex",
        [
          Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip;
        ]
        @ qsuite [ prop_hex_roundtrip ] );
      ( "sha256",
        [
          Alcotest.test_case "vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million a" `Slow test_sha256_million_a;
          Alcotest.test_case "streaming" `Quick test_sha256_streaming;
          Alcotest.test_case "finalized guard" `Quick test_sha256_finalized_guard;
        ]
        @ qsuite [ prop_sha256_chunking ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc4231" `Quick test_hmac_rfc4231;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "chacha20",
        [
          Alcotest.test_case "block vector" `Quick test_chacha20_block;
          Alcotest.test_case "encrypt vector" `Quick test_chacha20_encrypt;
        ]
        @ qsuite [ prop_chacha20_involution ] );
      ( "bignum",
        [
          Alcotest.test_case "basic" `Quick test_bignum_basic;
          Alcotest.test_case "bytes" `Quick test_bignum_bytes;
          Alcotest.test_case "bits" `Quick test_bignum_bits;
          Alcotest.test_case "divmod" `Quick test_bignum_divmod;
          Alcotest.test_case "modexp known" `Quick test_bignum_modexp_known;
          Alcotest.test_case "inverse" `Quick test_bignum_inverse;
          Alcotest.test_case "more edges" `Quick test_bignum_more_edges;
          Alcotest.test_case "mont ctx api" `Quick test_mont_ctx_api;
        ]
        @ qsuite
            [
              prop_add_commutes; prop_mul_commutes; prop_add_sub_roundtrip;
              prop_divmod_identity; prop_shift_roundtrip; prop_bytes_roundtrip;
              prop_modexp_matches_naive; prop_windowed_modexp_matches_binary;
              prop_mod_int_matches;
            ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "int_below" `Quick test_prng_int_below;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "float_unit" `Quick test_prng_float_unit;
          Alcotest.test_case "edges" `Quick test_prng_edges;
        ] );
      ( "prime",
        [
          Alcotest.test_case "table" `Quick test_small_primes_table;
          Alcotest.test_case "known primes" `Quick test_known_primes;
          Alcotest.test_case "carmichael" `Quick test_carmichael_rejected;
          Alcotest.test_case "generate" `Quick test_generate_prime;
        ] );
      ( "rsa",
        [
          Alcotest.test_case "sign/verify" `Quick test_rsa_sign_verify;
          Alcotest.test_case "cross key" `Quick test_rsa_cross_key;
          Alcotest.test_case "key consistency" `Quick test_rsa_key_internal_consistency;
          Alcotest.test_case "crt = plain" `Quick test_rsa_crt_matches_plain;
          Alcotest.test_case "public serde" `Quick test_rsa_public_serialization;
        ]
        @ qsuite [ prop_rsa_crt_roundtrip ] );
      ( "aead",
        [
          Alcotest.test_case "roundtrip" `Quick test_aead_roundtrip;
        ]
        @ qsuite [ prop_aead_roundtrip ] );
      ( "gf256",
        [
          Alcotest.test_case "axioms" `Quick test_gf256_axioms;
          Alcotest.test_case "interpolation" `Quick test_gf_poly_interpolate;
        ]
        @ qsuite
            [
              prop_gf256_mul_assoc_comm; prop_gf256_distributive; prop_gf256_pow;
              prop_gf_poly_roundtrip;
            ] );
      ( "shamir",
        [
          Alcotest.test_case "roundtrip" `Quick test_shamir_roundtrip;
          Alcotest.test_case "serde" `Quick test_shamir_share_serde;
        ]
        @ qsuite [ prop_shamir_roundtrip ] );
      ( "ida",
        [
          Alcotest.test_case "roundtrip" `Quick test_ida_roundtrip;
          Alcotest.test_case "edge cases" `Quick test_ida_edge_cases;
          Alcotest.test_case "serde" `Quick test_ida_fragment_serde;
        ]
        @ qsuite
            [
              prop_ida_roundtrip;
              prop_ida_stripe_roundtrip;
              prop_ida_stripe_insufficient;
              prop_ida_stripe_streaming_equiv;
            ] );
      ( "keytree",
        [
          Alcotest.test_case "join & agree" `Quick test_keytree_join_and_agree;
          Alcotest.test_case "eviction" `Quick test_keytree_eviction;
          Alcotest.test_case "backward secrecy" `Quick test_keytree_backward_secrecy;
          Alcotest.test_case "O(log n) rekey" `Quick test_keytree_log_n_messages;
          Alcotest.test_case "capacity" `Quick test_keytree_capacity;
        ]
        @ qsuite [ prop_keytree_random_churn ] );
      ( "merkle",
        [
          Alcotest.test_case "empty/single" `Quick test_merkle_empty_and_single;
          Alcotest.test_case "proofs" `Quick test_merkle_proofs;
          Alcotest.test_case "root sensitivity" `Quick test_merkle_root_changes_with_leaves;
        ]
        @ qsuite
            [ prop_merkle_all_proofs_verify; prop_merkle_mutations_rejected ] );
    ]
