(* Networked-transport tests: frame codec and full client sessions over
   real loopback sockets (the third interpreter of the Runtime effects). *)

let key_of name =
  Crypto.Rsa.generate ~bits:512 (Crypto.Prng.create ~seed:("tk-" ^ name))

let alice_key = key_of "alice"
let bob_key = key_of "bob"

let test_frame_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      Unix.close b)
    (fun () ->
      let payloads = [ ""; "x"; String.make 100_000 'q'; "\x00\x01\xff" ] in
      List.iter
        (fun p ->
          Tcpnet.Frame.write_frame a p;
          match Tcpnet.Frame.read_frame b with
          | Some p' -> Alcotest.(check string) "frame roundtrip" p p'
          | None -> Alcotest.fail "unexpected EOF")
        payloads;
      Unix.close a;
      Alcotest.(check bool) "EOF" true (Tcpnet.Frame.read_frame b = None))

let test_frame_oversize_rejected () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      Unix.close b)
    (fun () ->
      (* A length prefix over the cap must be refused without allocating. *)
      let evil = "\x7f\xff\xff\xff" in
      ignore (Unix.write_substring a evil 0 4);
      Unix.close a;
      Alcotest.(check bool) "oversize rejected" true (Tcpnet.Frame.read_frame b = None))

let test_pipelined_codec () =
  (* Pure codec roundtrips for the correlation-id sub-protocol. *)
  let open Tcpnet.Frame in
  (match parse_request (encode_call ~id:77 "payload") with
  | Some (Call { id = 77; payload = "payload" }) -> ()
  | _ -> Alcotest.fail "call roundtrip");
  (match parse_request (encode_oneway "gossip") with
  | Some (Oneway "gossip") -> ()
  | _ -> Alcotest.fail "oneway roundtrip");
  (match parse_response (encode_reply ~id:max_id (Some "r")) with
  | Some (Reply { id; payload = Some "r" }) ->
    Alcotest.(check int) "max id" max_id id
  | _ -> Alcotest.fail "reply roundtrip");
  (match parse_response (encode_reply ~id:3 None) with
  | Some (Reply { id = 3; payload = None }) -> ()
  | _ -> Alcotest.fail "no-reply roundtrip");
  (match parse_response (encode_reject ~id:9 "bad") with
  | Some (Reject { id = 9; message = "bad" }) -> ()
  | _ -> Alcotest.fail "reject roundtrip");
  (match parse_response (encode_conn_error "oops") with
  | Some (Conn_error "oops") -> ()
  | _ -> Alcotest.fail "conn-error roundtrip");
  Alcotest.(check bool) "unknown tag" true (parse_request "\xff" = None);
  Alcotest.(check bool) "empty" true (parse_request "" = None);
  Alcotest.(check bool) "short pipelined" true (parse_request "\x02\x00" = None)

let test_traced_codec () =
  let open Tcpnet.Frame in
  let ctx =
    {
      trace = String.init trace_id_bytes (fun i -> Char.chr (i * 7 land 0xff));
      span = 0x1234_5678_9abc;
      flags = 3;
    }
  in
  (match parse_request_traced (encode_call ~id:42 ~trace:ctx "pay") with
  | Some (Call { id = 42; payload = "pay" }, Some c) ->
    Alcotest.(check bool) "call ctx roundtrips" true (c = ctx)
  | _ -> Alcotest.fail "traced call roundtrip");
  (match parse_request_traced (encode_oneway ~trace:ctx "g") with
  | Some (Oneway "g", Some c) ->
    Alcotest.(check bool) "oneway ctx roundtrips" true (c = ctx)
  | _ -> Alcotest.fail "traced oneway roundtrip");
  (match parse_request_traced (encode_oneway ~shard:9 ~trace:ctx "g") with
  | Some (Sharded_oneway { shard = 9; payload = "g" }, Some c) ->
    Alcotest.(check bool) "sharded oneway ctx roundtrips" true (c = ctx)
  | _ -> Alcotest.fail "traced sharded oneway roundtrip");
  (* The broadcast fast path must carry the context too. *)
  let pb = prebuilt_call ~shard:3 ~trace:ctx "body" in
  set_prebuilt_id pb 7;
  let s = Bytes.to_string pb in
  (match parse_request_traced (String.sub s 4 (String.length s - 4)) with
  | Some (Sharded_call { id = 7; shard = 3; payload = "body" }, Some c) ->
    Alcotest.(check bool) "prebuilt ctx roundtrips" true (c = ctx)
  | _ -> Alcotest.fail "traced prebuilt roundtrip");
  (* Backward compatibility both ways: an untraced sender emits the
     legacy tags byte-for-byte, and the legacy parser accepts traced
     frames by dropping the context. *)
  Alcotest.(check char) "untraced call keeps legacy tag" '\x02'
    (encode_call ~id:1 "p").[0];
  Alcotest.(check char) "untraced oneway keeps legacy tag" '\x00'
    (encode_oneway "p").[0];
  (match parse_request (encode_call ~id:2 ~trace:ctx "p") with
  | Some (Call { id = 2; payload = "p" }) -> ()
  | _ -> Alcotest.fail "legacy parse of a traced frame");
  (match parse_request_traced (encode_call ~id:3 "p") with
  | Some (Call _, None) -> ()
  | _ -> Alcotest.fail "untraced frame must carry no ctx");
  (* A wrong-length trace id is the sender's bug — refuse to encode. *)
  Alcotest.check_raises "short trace id refused at encode"
    (Invalid_argument "Frame: trace id must be 16 bytes") (fun () ->
      ignore (encode_call ~id:4 ~trace:{ ctx with trace = "short" } "p"))

let traced_codec_qcheck =
  QCheck.Test.make ~name:"traced frames round-trip any ctx and payload"
    ~count:300
    QCheck.(
      pair
        (pair (string_of_size Gen.(0 -- 64)) (string_of_size (Gen.return 16)))
        (pair (pair (int_bound 0x3fffffff) (int_bound 0x3fffffff))
           (int_bound 255)))
    (fun ((payload, trace), ((hi, lo), flags)) ->
      let open Tcpnet.Frame in
      let ctx = { trace; span = (hi lsl 31) lor lo; flags } in
      let call =
        match parse_request_traced (encode_call ~id:11 ~trace:ctx payload) with
        | Some (Call { id = 11; payload = p }, Some c) -> p = payload && c = ctx
        | _ -> false
      in
      let oneway =
        match
          parse_request_traced (encode_oneway ~shard:2 ~trace:ctx payload)
        with
        | Some (Sharded_oneway { shard = 2; payload = p }, Some c) ->
          p = payload && c = ctx
        | _ -> false
      in
      call && oneway)

let with_cluster ?(n = 4) ?(b = 1) ?(behavior = fun _ -> Store.Faults.Honest) fn =
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
  Store.Keyring.register keyring "bob" bob_key.Crypto.Rsa.public;
  let servers = Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ()) in
  let hosts =
    Array.mapi
      (fun i server ->
        Tcpnet.Server_host.start ~behavior:(behavior i) ~server ~port:0 ())
      servers
  in
  let eps = Array.map (fun h -> ("127.0.0.1", Tcpnet.Server_host.port h)) hosts in
  let endpoints id = if id >= 0 && id < n then Some eps.(id) else None in
  Fun.protect
    ~finally:(fun () -> Array.iter Tcpnet.Server_host.stop hosts)
    (fun () -> fn ~keyring ~endpoints ~hosts ~n ~b)

let connect ~keyring ~n ~b ?(timeout = 2.0) name key =
  let config = { (Store.Client.default_config ~n ~b) with Store.Client.timeout } in
  match Store.Client.connect ~config ~uid:name ~key ~keyring ~group:"net" () with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Store.Client.error_to_string e)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "error: %s" (Store.Client.error_to_string e)

let test_live_write_read () =
  with_cluster (fun ~keyring ~endpoints ~hosts:_ ~n ~b ->
      Tcpnet.Live.run ~endpoints (fun () ->
          let alice = connect ~keyring ~n ~b "alice" alice_key in
          ok (Store.Client.write alice ~item:"x" "over tcp");
          Alcotest.(check string) "read" "over tcp" (ok (Store.Client.read alice ~item:"x"));
          ok (Store.Client.disconnect alice);
          (* A second session restores the context from the store. *)
          let again = connect ~keyring ~n ~b "alice" alice_key in
          Alcotest.(check string) "cross-session" "over tcp"
            (ok (Store.Client.read again ~item:"x"))))

let test_live_other_reader () =
  with_cluster (fun ~keyring ~endpoints ~hosts:_ ~n ~b ->
      Tcpnet.Live.run ~endpoints (fun () ->
          let alice = connect ~keyring ~n ~b "alice" alice_key in
          ok (Store.Client.write alice ~item:"news" "hello bob");
          let bob = connect ~keyring ~n ~b "bob" bob_key in
          Alcotest.(check string) "bob reads" "hello bob"
            (ok (Store.Client.read bob ~item:"news"))))

let test_live_crash_tolerated () =
  with_cluster (fun ~keyring ~endpoints ~hosts ~n ~b ->
      Tcpnet.Live.run ~endpoints (fun () ->
          let alice = connect ~timeout:0.5 ~keyring ~n ~b "alice" alice_key in
          ok (Store.Client.write alice ~item:"x" "v1");
          (* Kill the last server: within the b=1 bound. *)
          Tcpnet.Server_host.stop hosts.(n - 1);
          Alcotest.(check string) "read with crash" "v1"
            (ok (Store.Client.read alice ~item:"x"));
          ok (Store.Client.write alice ~item:"x" "v2");
          Alcotest.(check string) "write with crash" "v2"
            (ok (Store.Client.read alice ~item:"x"))))

let test_gossip_over_tcp () =
  let n = 4 and b = 1 in
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
  let servers = Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ()) in
  (* Start hosts first without gossip to learn ports, then wire a second
     fleet is overkill: instead start sequentially with known ports. *)
  let hosts = Array.make n None in
  let port_of i = match hosts.(i) with Some h -> Tcpnet.Server_host.port h | None -> 0 in
  Array.iteri
    (fun i server -> hosts.(i) <- Some (Tcpnet.Server_host.start ~server ~port:0 ()))
    servers;
  let eps = Array.init n (fun i -> ("127.0.0.1", port_of i)) in
  (* Re-start server 0 host's gossip by pushing manually: exercise the
     push path through a one-way frame. *)
  let uid = Store.Uid.make ~group:"net" ~item:"g" in
  let w =
    Store.Signing.sign_write ~key:alice_key ~writer:"alice" ~uid
      ~stamp:(Store.Stamp.scalar 5) "gossiped"
  in
  let payload =
    Store.Payload.encode_envelope
      { Store.Payload.token = None; epoch = 0; request = Store.Payload.Gossip_push { writes = [ w ]; have = []; epoch = None } }
  in
  let host, port = eps.(2) in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd addr;
  Tcpnet.Frame.write_frame fd ("\x00" ^ payload);
  Unix.close fd;
  (* One-way delivery is asynchronous; poll briefly. *)
  let rec wait tries =
    if Store.Server.current_write servers.(2) uid <> None then true
    else if tries = 0 then false
    else begin
      Thread.delay 0.02;
      wait (tries - 1)
    end
  in
  let delivered = wait 100 in
  Array.iter (function Some h -> Tcpnet.Server_host.stop h | None -> ()) hosts;
  Alcotest.(check bool) "gossip push delivered over tcp" true delivered

(* --- pooled transport ---------------------------------------------------- *)

let meta_query_payload =
  Store.Payload.encode_envelope
    {
      Store.Payload.token = None; epoch = 0;
      request =
        Store.Payload.Meta_query { uid = Store.Uid.make ~group:"net" ~item:"x" };
    }

(* A server that accepts connections and never replies: requests park in
   the pending table until their deadline. *)
let blackhole () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listener 16;
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let stop = ref false in
  let accepted = ref [] in
  let th =
    Thread.create
      (fun () ->
        while not !stop do
          match Unix.accept listener with
          | fd, _ -> accepted := fd :: !accepted
          | exception _ -> ()
        done)
      ()
  in
  let teardown () =
    stop := true;
    (* shutdown, not just close: close alone does not wake a thread
       blocked in [accept], and the join below would hang forever. *)
    (try Unix.shutdown listener Unix.SHUTDOWN_ALL with _ -> ());
    (try Unix.close listener with _ -> ());
    Thread.join th;
    List.iter (fun fd -> try Unix.close fd with _ -> ()) !accepted
  in
  (port, teardown)

let live_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_no_fd_leak_on_timeouts () =
  (* Regression for the legacy leak: per-call threads kept fds alive
     after the deadline. 100 timed-out calls through the pool must not
     grow the process fd table — one pooled connection serves them all,
     and abandoned requests are dropped at completion. *)
  let port, teardown = blackhole () in
  Fun.protect ~finally:teardown (fun () ->
      let pool = Tcpnet.Pool.create () in
      let ep = ("127.0.0.1", port) in
      (* First call dials the pooled connection; count fds after that. *)
      ignore (Tcpnet.Pool.call pool ~timeout:0.01 ep meta_query_payload);
      let before = live_fds () in
      for _ = 1 to 100 do
        match Tcpnet.Pool.call pool ~timeout:0.01 ep meta_query_payload with
        | Tcpnet.Pool.Dropped -> ()
        | _ -> Alcotest.fail "blackhole call should time out"
      done;
      let after = live_fds () in
      Alcotest.(check bool)
        (Printf.sprintf "fd growth bounded (%d -> %d)" before after)
        true
        (after - before <= 2);
      Alcotest.(check int) "no abandoned in-flight requests" 0
        (Tcpnet.Pool.in_flight pool);
      Alcotest.(check int) "single pooled connection" 1
        (Tcpnet.Pool.connection_count pool ep);
      Tcpnet.Pool.shutdown pool)

(* Replies in reverse order of the requests on one connection: the
   correlation id, not arrival order, matches replies to callers. *)
let test_pipelined_out_of_order () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listener 4;
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  (* The server keeps its end open until after the asserts: closing it
     early would let the pool's reader see EOF and unlink the connection
     before the "one shared connection" check runs. *)
  let server_fd = ref None in
  let server =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept listener in
        server_fd := Some fd;
        let reqs =
          List.init 2 (fun _ ->
              match Tcpnet.Frame.read_frame fd with
              | Some frame -> (
                match Tcpnet.Frame.parse_request frame with
                | Some (Tcpnet.Frame.Call { id; payload }) -> (id, payload)
                | _ -> Alcotest.fail "expected pipelined call")
              | None -> Alcotest.fail "unexpected EOF")
        in
        List.iter
          (fun (id, payload) ->
            Tcpnet.Frame.write_frame fd
              (Tcpnet.Frame.encode_reply ~id (Some ("echo:" ^ payload))))
          (List.rev reqs))
      ()
  in
  let pool = Tcpnet.Pool.create ~max_connections_per_endpoint:1 () in
  let ep = ("127.0.0.1", port) in
  let result = Array.make 2 Tcpnet.Pool.Dropped in
  let callers =
    List.init 2 (fun i ->
        Thread.create
          (fun () ->
            (* Stagger so both are in flight on the single connection
               before the server replies to either. *)
            if i = 1 then Thread.delay 0.02;
            result.(i) <-
              Tcpnet.Pool.call pool ~timeout:2.0 ep (Printf.sprintf "req%d" i))
          ())
  in
  List.iter Thread.join callers;
  Thread.join server;
  Array.iteri
    (fun i r ->
      match r with
      | Tcpnet.Pool.Reply p ->
        Alcotest.(check string) "correlated reply" (Printf.sprintf "echo:req%d" i) p
      | _ -> Alcotest.fail "expected a reply")
    result;
  Alcotest.(check int) "one shared connection" 1
    (Tcpnet.Pool.connection_count pool ep);
  Tcpnet.Pool.shutdown pool;
  (match !server_fd with Some fd -> (try Unix.close fd with _ -> ()) | None -> ());
  Unix.close listener

let test_framed_errors () =
  with_cluster (fun ~keyring:_ ~endpoints:_ ~hosts ~n:_ ~b:_ ->
      let ep = ("127.0.0.1", Tcpnet.Server_host.port hosts.(0)) in
      (* An unparsable frame gets a framed connection error, not a
         silent drop, and the connection keeps serving. *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, snd ep));
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          Tcpnet.Frame.write_frame fd "\xee\xff";
          (match Tcpnet.Frame.read_frame fd with
          | Some frame -> (
            match Tcpnet.Frame.parse_response frame with
            | Some (Tcpnet.Frame.Conn_error _) -> ()
            | _ -> Alcotest.fail "expected framed connection error")
          | None -> Alcotest.fail "server dropped instead of replying");
          (* Still in sync: a well-formed call on the same connection works. *)
          Tcpnet.Frame.write_frame fd
            (Tcpnet.Frame.encode_call ~id:5 meta_query_payload);
          match Tcpnet.Frame.read_frame fd with
          | Some frame -> (
            match Tcpnet.Frame.parse_response frame with
            | Some (Tcpnet.Frame.Reply { id = 5; payload = Some _ }) -> ()
            | _ -> Alcotest.fail "expected reply after error")
          | None -> Alcotest.fail "connection died after framed error");
      (* A malformed envelope inside a well-formed call is rejected with
         a message — the pool distinguishes it from a dead connection. *)
      let pool = Tcpnet.Pool.create () in
      (match Tcpnet.Pool.call pool ~timeout:2.0 ep "not-an-envelope" with
      | Tcpnet.Pool.Rejected _ -> ()
      | Tcpnet.Pool.Reply _ -> Alcotest.fail "garbage accepted"
      | Tcpnet.Pool.No_reply | Tcpnet.Pool.Dropped ->
        Alcotest.fail "rejection not distinguishable from drop");
      Tcpnet.Pool.shutdown pool)

let test_pool_reconnect () =
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
  let server = Store.Server.create ~id:0 ~keyring ~n:1 ~b:0 () in
  let host1 = Tcpnet.Server_host.start ~server ~port:0 () in
  let port = Tcpnet.Server_host.port host1 in
  let ep = ("127.0.0.1", port) in
  let pool = Tcpnet.Pool.create ~backoff_base:0.01 ~backoff_max:0.05 () in
  (match Tcpnet.Pool.call pool ~timeout:2.0 ep meta_query_payload with
  | Tcpnet.Pool.Reply _ -> ()
  | _ -> Alcotest.fail "first call should succeed");
  let before = (Store.Metrics.read ()).Store.Metrics.tcp_reconnects in
  Tcpnet.Server_host.stop host1;
  (* Restart on the same port: the pool must notice the dead connection
     and transparently redial (within its backoff). *)
  let host2 = Tcpnet.Server_host.start ~server ~port () in
  let rec until tries =
    match Tcpnet.Pool.call pool ~timeout:0.5 ep meta_query_payload with
    | Tcpnet.Pool.Reply _ -> true
    | _ ->
      if tries = 0 then false
      else begin
        Thread.delay 0.05;
        until (tries - 1)
      end
  in
  let reconnected = until 40 in
  let after = (Store.Metrics.read ()).Store.Metrics.tcp_reconnects in
  Tcpnet.Server_host.stop host2;
  Tcpnet.Pool.shutdown pool;
  Alcotest.(check bool) "calls succeed after restart" true reconnected;
  Alcotest.(check bool) "a reconnect was counted" true (after > before)

let test_backoff_cap () =
  (* An endpoint nobody listens on: each dial attempt fails and doubles
     the backoff until the cap. *)
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  Unix.close listener (* bound but never listening: connects are refused *);
  let cap = 0.04 in
  let pool = Tcpnet.Pool.create ~backoff_base:0.01 ~backoff_max:cap () in
  let ep = ("127.0.0.1", port) in
  let backoffs = ref [] in
  for _ = 1 to 6 do
    (match Tcpnet.Pool.call pool ~timeout:0.2 ep meta_query_payload with
    | Tcpnet.Pool.Dropped -> ()
    | _ -> Alcotest.fail "dead endpoint should drop");
    let b = Tcpnet.Pool.current_backoff pool ep in
    backoffs := b :: !backoffs;
    (* Sleep past the window so the next call really redials. *)
    Thread.delay (b +. 0.005)
  done;
  Tcpnet.Pool.shutdown pool;
  (match !backoffs with
  | last :: _ -> Alcotest.(check (float 1e-9)) "saturates at the cap" cap last
  | [] -> assert false);
  List.iter
    (fun b -> Alcotest.(check bool) "never exceeds the cap" true (b <= cap +. 1e-9))
    !backoffs;
  (* The first failure starts at the base, not the cap. *)
  match List.rev !backoffs with
  | first :: _ -> Alcotest.(check (float 1e-9)) "starts at the base" 0.01 first
  | [] -> assert false

let test_concurrent_quorum_clients () =
  with_cluster (fun ~keyring ~endpoints ~hosts:_ ~n ~b ->
      let errors = ref [] in
      let errors_lock = Mutex.create () in
      let client name key items =
        Thread.create
          (fun () ->
            try
              Tcpnet.Live.run ~endpoints (fun () ->
                  let session = connect ~keyring ~n ~b name key in
                  List.iter
                    (fun item ->
                      ok (Store.Client.write session ~item (name ^ ":" ^ item)))
                    items;
                  List.iter
                    (fun item ->
                      Alcotest.(check string) "concurrent read" (name ^ ":" ^ item)
                        (ok (Store.Client.read session ~item)))
                    items;
                  ok (Store.Client.disconnect session))
            with e ->
              Mutex.lock errors_lock;
              errors := Printexc.to_string e :: !errors;
              Mutex.unlock errors_lock)
          ()
      in
      let items prefix = List.init 5 (fun i -> Printf.sprintf "%s%d" prefix i) in
      let threads =
        [
          client "alice" alice_key (items "a");
          client "bob" bob_key (items "b");
          client "alice" alice_key (items "a2-");
          client "bob" bob_key (items "b2-");
        ]
      in
      List.iter Thread.join threads;
      match !errors with
      | [] -> ()
      | e :: _ -> Alcotest.failf "concurrent client failed: %s" e)

(* --- robustness: hostile frames, health, chaos, Byzantine hosts ---------- *)

let reserve_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let p =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  Unix.close fd;
  p

(* Regression for the gossip write-loss bug: writes popped off the
   gossip buffer used to be dropped forever when the push failed. With a
   dead peer the host must keep them in its backlog and deliver once the
   peer comes up. *)
let test_gossip_requeue_dead_peer () =
  let n = 2 and b = 0 in
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
  let server_a = Store.Server.create ~id:0 ~keyring ~n ~b () in
  let server_b = Store.Server.create ~id:1 ~keyring ~n ~b () in
  let peer_port = reserve_port () in
  let host_a =
    Tcpnet.Server_host.start
      ~gossip:
        {
          Tcpnet.Server_host.peers = [ ("127.0.0.1", peer_port) ];
          period = 0.05;
        }
      ~server:server_a ~port:0 ()
  in
  let uid = Store.Uid.make ~group:"requeue" ~item:"x" in
  let w =
    Store.Signing.sign_write ~key:alice_key ~writer:"alice" ~uid
      ~stamp:(Store.Stamp.scalar 7) "survives the partition"
  in
  let payload =
    Store.Payload.encode_envelope
      {
        Store.Payload.token = None; epoch = 0;
        request = Store.Payload.Write_req { write = w; await_ack = true };
      }
  in
  let pool = Tcpnet.Pool.create () in
  (match
     Tcpnet.Pool.call pool ~timeout:2.0
       ("127.0.0.1", Tcpnet.Server_host.port host_a)
       payload
   with
  | Tcpnet.Pool.Reply _ -> ()
  | _ -> Alcotest.fail "write to host A failed");
  (* Let several gossip rounds fail against the dead peer first. *)
  Thread.delay 0.3;
  Alcotest.(check bool) "peer still empty" true
    (Store.Server.current_write server_b uid = None);
  let host_b = Tcpnet.Server_host.start ~server:server_b ~port:peer_port () in
  let rec wait tries =
    if Store.Server.current_write server_b uid <> None then true
    else if tries = 0 then false
    else begin
      Thread.delay 0.1;
      wait (tries - 1)
    end
  in
  let delivered = wait 100 in
  Tcpnet.Server_host.stop host_a;
  Tcpnet.Server_host.stop host_b;
  Tcpnet.Pool.shutdown pool;
  Alcotest.(check bool) "requeued write delivered after peer recovery" true
    delivered

(* Per-endpoint health: consecutive failures trip a suspicion window
   (fail-fast), the window expiring admits a probe, and a success clears
   the state. *)
let test_pool_health_suspicion () =
  let port, teardown = blackhole () in
  let ep = ("127.0.0.1", port) in
  let pool =
    Tcpnet.Pool.create ~suspect_after:2 ~suspect_base:0.1 ~suspect_max:0.2 ()
  in
  for _ = 1 to 2 do
    match Tcpnet.Pool.call pool ~timeout:0.05 ep meta_query_payload with
    | Tcpnet.Pool.Dropped -> ()
    | _ -> Alcotest.fail "blackhole call should drop"
  done;
  (match Tcpnet.Pool.health pool with
  | [ h ] ->
    Alcotest.(check bool) "failures counted" true (h.Tcpnet.Pool.consecutive_failures >= 2);
    Alcotest.(check bool) "suspected" true
      (h.Tcpnet.Pool.down_until > Unix.gettimeofday ());
    Alcotest.(check bool) "last error recorded" true
      (h.Tcpnet.Pool.last_error <> None)
  | hs -> Alcotest.failf "expected one endpoint, got %d" (List.length hs));
  (* Suspected: the next call fails fast, well inside its timeout. *)
  let t0 = Unix.gettimeofday () in
  (match Tcpnet.Pool.call pool ~timeout:1.0 ep meta_query_payload with
  | Tcpnet.Pool.Dropped -> ()
  | _ -> Alcotest.fail "suspected endpoint should fail fast");
  Alcotest.(check bool) "fail-fast under suspicion" true
    (Unix.gettimeofday () -. t0 < 0.5);
  (* The same health is published through Store.Metrics. *)
  Alcotest.(check bool) "published to metrics" true
    (List.exists
       (fun (h : Store.Metrics.endpoint_health) ->
         h.endpoint = Printf.sprintf "127.0.0.1:%d" port
         && h.consecutive_failures >= 2)
       (Store.Metrics.endpoint_health ()));
  (* Replace the blackhole with a live server on the same port: once the
     window expires the half-open probe succeeds and clears suspicion. *)
  teardown ();
  let keyring = Store.Keyring.create () in
  let server = Store.Server.create ~id:0 ~keyring ~n:1 ~b:0 () in
  let host = Tcpnet.Server_host.start ~server ~port () in
  Thread.delay 0.25 (* past suspect_max: the window has expired *);
  let rec until tries =
    match Tcpnet.Pool.call pool ~timeout:0.5 ep meta_query_payload with
    | Tcpnet.Pool.Reply _ -> true
    | _ ->
      if tries = 0 then false
      else begin
        Thread.delay 0.1;
        until (tries - 1)
      end
  in
  let recovered = until 30 in
  Alcotest.(check bool) "half-open probe recovers" true recovered;
  (match Tcpnet.Pool.health pool with
  | [ h ] ->
    Alcotest.(check int) "failures cleared" 0 h.Tcpnet.Pool.consecutive_failures;
    Alcotest.(check (float 1e-9)) "suspicion cleared" 0. h.Tcpnet.Pool.down_until
  | hs -> Alcotest.failf "expected one endpoint, got %d" (List.length hs));
  Tcpnet.Server_host.stop host;
  Tcpnet.Pool.shutdown pool

(* Membership churn retires endpoints for good: eviction closes pooled
   connections, clears backoff/suspicion state and removes the health
   row (pool-local and in Store.Metrics) — and a later submission to the
   same address starts from a clean slate instead of sitting out a stale
   suspicion window inherited from the departed server. *)
let test_pool_evict () =
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
  let server = Store.Server.create ~id:0 ~keyring ~n:1 ~b:0 () in
  let host1 = Tcpnet.Server_host.start ~server ~port:0 () in
  let port = Tcpnet.Server_host.port host1 in
  let ep = ("127.0.0.1", port) in
  (* A suspicion window far longer than the test: were eviction to leak
     it, the post-churn call below would fail fast rather than land. *)
  let pool =
    Tcpnet.Pool.create ~suspect_after:2 ~suspect_base:30.0 ~suspect_max:30.0 ()
  in
  (match Tcpnet.Pool.call pool ~timeout:2.0 ep meta_query_payload with
  | Tcpnet.Pool.Reply _ -> ()
  | _ -> Alcotest.fail "first call should succeed");
  Alcotest.(check bool) "connection pooled" true
    (Tcpnet.Pool.connection_count pool ep >= 1);
  (* The server departs; unanswered calls drive the endpoint into
     suspicion, exactly what a decommissioned address looks like. *)
  Tcpnet.Server_host.stop host1;
  for _ = 1 to 3 do
    ignore (Tcpnet.Pool.call pool ~timeout:0.1 ep meta_query_payload)
  done;
  (match Tcpnet.Pool.health pool with
  | [ h ] ->
    Alcotest.(check bool) "suspected before eviction" true
      (h.Tcpnet.Pool.down_until > Unix.gettimeofday ())
  | hs -> Alcotest.failf "expected one endpoint, got %d" (List.length hs));
  let metrics_row () =
    List.exists
      (fun (h : Store.Metrics.endpoint_health) ->
        h.endpoint = Printf.sprintf "127.0.0.1:%d" port)
      (Store.Metrics.endpoint_health ())
  in
  Alcotest.(check bool) "metrics row before eviction" true (metrics_row ());
  Tcpnet.Pool.evict pool ep;
  Alcotest.(check int) "connections closed" 0
    (Tcpnet.Pool.connection_count pool ep);
  Alcotest.(check int) "health row removed" 0
    (List.length (Tcpnet.Pool.health pool));
  Alcotest.(check bool) "metrics row removed" false (metrics_row ());
  Alcotest.(check (float 1e-9)) "backoff cleared" 0.
    (Tcpnet.Pool.current_backoff pool ep);
  (* A joining server reuses the address: with the old suspicion gone,
     traffic lands immediately instead of failing fast for 30 s. *)
  let host2 = Tcpnet.Server_host.start ~server ~port () in
  (match Tcpnet.Pool.call pool ~timeout:2.0 ep meta_query_payload with
  | Tcpnet.Pool.Reply _ -> ()
  | _ -> Alcotest.fail "evicted endpoint should start from a clean slate");
  Tcpnet.Server_host.stop host2;
  Tcpnet.Pool.shutdown pool

(* Context reconstruction over the live transport: a session that dies
   without writing its context back is rebuilt from the servers' signed
   writes — with one Stale (frozen) server in the mix. *)
let test_live_context_reconstruction () =
  with_cluster
    ~behavior:(fun i -> if i = 3 then Store.Faults.Stale else Store.Faults.Honest)
    (fun ~keyring ~endpoints ~hosts:_ ~n ~b ->
      Tcpnet.Live.run ~endpoints (fun () ->
          let config = Store.Client.default_config ~n ~b in
          let session ?recover () =
            match
              Store.Client.connect ?recover ~config ~uid:"alice" ~key:alice_key
                ~keyring ~group:"recon" ()
            with
            | Ok c -> c
            | Error e -> Alcotest.failf "connect: %s" (Store.Client.error_to_string e)
          in
          let crashed = session () in
          List.iter
            (fun (item, v) -> ok (Store.Client.write crashed ~item v))
            [ ("a", "1"); ("b", "2"); ("c", "3") ];
          let old_ctx = Store.Client.context crashed in
          (* No disconnect: the session is simply dropped (crash). *)
          let revived = session ~recover:`Reconstruct () in
          let new_ctx = Store.Client.context revived in
          List.iter
            (fun item ->
              let uid = Store.Uid.make ~group:"recon" ~item in
              let want = Store.Context.find old_ctx uid in
              let got = Store.Context.find new_ctx uid in
              Alcotest.(check bool)
                (Printf.sprintf "context entry for %s rebuilt" item)
                true
                (Store.Stamp.compare got want = 0))
            [ "a"; "b"; "c" ];
          List.iter
            (fun (item, v) ->
              Alcotest.(check string) "reads correct after reconstruction" v
                (ok (Store.Client.read revived ~item)))
            [ ("a", "1"); ("b", "2"); ("c", "3") ]))

(* Hostile wire inputs must never crash the server or allocate
   unboundedly: oversized length prefixes, truncated pipelined headers,
   and out-of-range correlation ids all get a framed error (or a clean
   hangup) and the host keeps serving. *)
let test_frame_hostile_inputs () =
  with_cluster (fun ~keyring:_ ~endpoints:_ ~hosts ~n:_ ~b:_ ->
      let port = Tcpnet.Server_host.port hosts.(0) in
      let dial () =
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        fd
      in
      let header len =
        String.init 4 (fun i -> Char.chr ((len lsr (8 * (3 - i))) land 0xff))
      in
      (* Length prefix just over the cap: a framed "too large" error,
         then hangup — and crucially no 16 MiB allocation. *)
      let fd = dial () in
      ignore
        (Unix.write_substring fd (header (Tcpnet.Frame.max_frame + 1)) 0 4);
      (match Tcpnet.Frame.read_frame fd with
      | Some frame -> (
        match Tcpnet.Frame.parse_response frame with
        | Some (Tcpnet.Frame.Conn_error msg) ->
          Alcotest.(check bool) "mentions the size" true
            (String.length msg > 0)
        | _ -> Alcotest.fail "expected framed error for oversized prefix")
      | None -> Alcotest.fail "server dropped oversized prefix silently");
      Alcotest.(check bool) "connection closed after oversize" true
        (Tcpnet.Frame.read_frame fd = None);
      (try Unix.close fd with _ -> ());
      (* Length prefix just under the cap with no body: the server just
         waits for the body; closing is a clean EOF, not a crash. *)
      let fd = dial () in
      ignore (Unix.write_substring fd (header Tcpnet.Frame.max_frame) 0 4);
      Unix.close fd;
      (* Truncated pipelined header inside a well-formed frame. *)
      let fd = dial () in
      Tcpnet.Frame.write_frame fd "\x02\x00";
      (match Tcpnet.Frame.read_frame fd with
      | Some frame -> (
        match Tcpnet.Frame.parse_response frame with
        | Some (Tcpnet.Frame.Conn_error _) -> ()
        | _ -> Alcotest.fail "expected framed error for truncated header")
      | None -> Alcotest.fail "server dropped truncated header silently");
      (* Malformed trace contexts: truncated extension, a length byte
         claiming over-long or short ids, a span id with the reserved
         top bit — each must come back as a framed error on a live
         connection, never a crash. *)
      let ctx =
        {
          Tcpnet.Frame.trace = String.make Tcpnet.Frame.trace_id_bytes 'a';
          span = 5;
          flags = 1;
        }
      in
      let traced =
        Tcpnet.Frame.encode_call ~id:2 ~trace:ctx meta_query_payload
      in
      let expect_conn_error what frame =
        Tcpnet.Frame.write_frame fd frame;
        match Tcpnet.Frame.read_frame fd with
        | Some r -> (
          match Tcpnet.Frame.parse_response r with
          | Some (Tcpnet.Frame.Conn_error _) -> ()
          | _ -> Alcotest.failf "expected framed error for %s" what)
        | None -> Alcotest.failf "server dropped %s silently" what
      in
      expect_conn_error "truncated trace context" (String.sub traced 0 12);
      let relen c =
        let b = Bytes.of_string traced in
        Bytes.set b 5 c;
        Bytes.to_string b
      in
      expect_conn_error "over-long trace id" (relen '\x30');
      expect_conn_error "short trace id" (relen '\x05');
      let evil_span = Bytes.of_string traced in
      Bytes.set evil_span 22
        (Char.chr (Char.code (Bytes.get evil_span 22) lor 0x80));
      expect_conn_error "span id top bit" (Bytes.to_string evil_span);
      (* Correlation id above max_id: the server must reject it at parse
         time — echoing it in a reply would be an encode error killing
         the connection thread. The connection keeps serving. *)
      let evil_id = "\x02\xff\xff\xff\xff" ^ meta_query_payload in
      Tcpnet.Frame.write_frame fd evil_id;
      (match Tcpnet.Frame.read_frame fd with
      | Some frame -> (
        match Tcpnet.Frame.parse_response frame with
        | Some (Tcpnet.Frame.Conn_error _) -> ()
        | _ -> Alcotest.fail "expected framed error for huge correlation id")
      | None -> Alcotest.fail "server dropped huge correlation id silently");
      Tcpnet.Frame.write_frame fd (Tcpnet.Frame.encode_call ~id:1 meta_query_payload);
      (match Tcpnet.Frame.read_frame fd with
      | Some frame -> (
        match Tcpnet.Frame.parse_response frame with
        | Some (Tcpnet.Frame.Reply { id = 1; payload = Some _ }) -> ()
        | _ -> Alcotest.fail "expected reply after hostile frames")
      | None -> Alcotest.fail "connection died after hostile frames");
      try Unix.close fd with _ -> ())

(* The chaos schedule is a pure function of the seed. *)
let test_chaos_determinism () =
  let d seed = Tcpnet.Chaos.decision_digest (Tcpnet.Chaos.plan ~seed ()) ~frames:64 in
  Alcotest.(check string) "same seed, same schedule" (d 7) (d 7);
  Alcotest.(check bool) "different seed, different schedule" true (d 7 <> d 8)

let test_chaos_proxy_faults () =
  let keyring = Store.Keyring.create () in
  let server = Store.Server.create ~id:0 ~keyring ~n:1 ~b:0 () in
  let host = Tcpnet.Server_host.start ~server ~port:0 () in
  let target = ("127.0.0.1", Tcpnet.Server_host.port host) in
  (* Pass-through: a faultless plan must be invisible to the RPC layer. *)
  let clear = Tcpnet.Chaos.start ~plan:(Tcpnet.Chaos.plan ~seed:1 ()) ~target () in
  let pool = Tcpnet.Pool.create () in
  (match
     Tcpnet.Pool.call pool ~timeout:2.0
       ("127.0.0.1", Tcpnet.Chaos.port clear)
       meta_query_payload
   with
  | Tcpnet.Pool.Reply _ -> ()
  | _ -> Alcotest.fail "pass-through proxy broke the call");
  (* The pump bumps its counter after the client already has the reply —
     give the thread a beat. *)
  let rec forwarded tries =
    let f = (Tcpnet.Chaos.stats clear).Tcpnet.Chaos.forwarded in
    if f >= 2 || tries = 0 then f
    else begin
      Thread.delay 0.02;
      forwarded (tries - 1)
    end
  in
  Alcotest.(check bool) "forwarded counted" true (forwarded 25 >= 2);
  Tcpnet.Chaos.stop clear;
  (* drop = 1.0: every frame vanishes; the call must time out cleanly. *)
  let dead =
    Tcpnet.Chaos.start ~plan:(Tcpnet.Chaos.plan ~seed:2 ~drop:1.0 ()) ~target ()
  in
  (match
     Tcpnet.Pool.call pool ~timeout:0.2
       ("127.0.0.1", Tcpnet.Chaos.port dead)
       meta_query_payload
   with
  | Tcpnet.Pool.Dropped -> ()
  | _ -> Alcotest.fail "dropped frames should time the call out");
  Alcotest.(check bool) "drop counted" true
    ((Tcpnet.Chaos.stats dead).Tcpnet.Chaos.dropped >= 1);
  Tcpnet.Chaos.stop dead;
  Tcpnet.Pool.shutdown pool;
  Tcpnet.Server_host.stop host

(* Byzantine behaviours behind real sockets. A Crash host accepts the
   connection but answers nothing (the client runs into its deadline,
   exactly as in the simulator); a Corrupt_value host in the read set
   cannot make a client return a wrong value — the signature check
   rejects the corruption and the next replica serves the real one. *)
let test_byzantine_hosts () =
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
  let server = Store.Server.create ~id:0 ~keyring ~n:1 ~b:0 () in
  let host =
    Tcpnet.Server_host.start ~behavior:Store.Faults.Crash ~server ~port:0 ()
  in
  let pool = Tcpnet.Pool.create () in
  (match
     Tcpnet.Pool.call pool ~timeout:0.2
       ("127.0.0.1", Tcpnet.Server_host.port host)
       meta_query_payload
   with
  | Tcpnet.Pool.Dropped -> ()
  | _ -> Alcotest.fail "a Crash host must be silent on the wire");
  Tcpnet.Pool.shutdown pool;
  Tcpnet.Server_host.stop host;
  (* Corrupt_value as server 0 — first in every preferred read set. *)
  with_cluster
    ~behavior:(fun i -> if i = 0 then Store.Faults.Corrupt_value else Store.Faults.Honest)
    (fun ~keyring ~endpoints ~hosts:_ ~n ~b ->
      Tcpnet.Live.run ~endpoints (fun () ->
          let alice = connect ~keyring ~n ~b "alice" alice_key in
          ok (Store.Client.write alice ~item:"x" "the real value");
          Alcotest.(check string) "corruption rejected, real value served"
            "the real value"
            (ok (Store.Client.read alice ~item:"x"))))

(* --- coded bulk transport over real sockets ------------------------------ *)

let coded_connect ~keyring ~n ~b ?(timeout = 2.0) name key =
  let config =
    {
      (Store.Client.default_config ~n ~b) with
      Store.Client.timeout;
      dispersal_threshold = 4096;
      dispersal_chunk = 16_384;
    }
  in
  match Store.Client.connect ~config ~uid:name ~key ~keyring ~group:"net" () with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Store.Client.error_to_string e)

let bulk_value n = String.init n (fun i -> Char.chr ((i * 31 + i / 997) land 0xff))

let test_live_dispersal_roundtrip () =
  with_cluster (fun ~keyring ~endpoints ~hosts:_ ~n ~b ->
      Tcpnet.Live.run ~endpoints (fun () ->
          let alice = coded_connect ~keyring ~n ~b "alice" alice_key in
          (* fragments of ~50 KB stream as several 16 KB Frag_put chunks
             and come back as ranged Frag_gets *)
          let value = bulk_value 100_000 in
          ok (Store.Client.write alice ~item:"bulk" value);
          Alcotest.(check string) "writer reads back" value
            (ok (Store.Client.read alice ~item:"bulk"));
          let bob = coded_connect ~keyring ~n ~b "bob" bob_key in
          Alcotest.(check string) "bob reconstructs" value
            (ok (Store.Client.read bob ~item:"bulk"))))

let test_live_dispersal_under_chaos () =
  (* Server 1 sits behind a chaos proxy that drops and corrupts frames
     in both directions. The coded write still commits — the scatter
     needs k+b = 3 clean ack streams and the other three servers provide
     them — and readers reconstruct around the damaged holder: a
     corrupted fragment fails its descriptor digest and is replaced. *)
  with_cluster (fun ~keyring ~endpoints ~hosts:_ ~n ~b ->
      let target =
        match endpoints 1 with Some e -> e | None -> Alcotest.fail "no endpoint"
      in
      let proxy =
        Tcpnet.Chaos.start
          ~plan:(Tcpnet.Chaos.plan ~seed:5 ~drop:0.2 ~corrupt:0.3 ())
          ~target ()
      in
      Fun.protect ~finally:(fun () -> Tcpnet.Chaos.stop proxy) @@ fun () ->
      let endpoints id =
        if id = 1 then Some ("127.0.0.1", Tcpnet.Chaos.port proxy)
        else endpoints id
      in
      Tcpnet.Live.run ~endpoints (fun () ->
          let alice = coded_connect ~timeout:0.5 ~keyring ~n ~b "alice" alice_key in
          let value = bulk_value 60_000 in
          ok (Store.Client.write alice ~item:"bulk" value);
          Alcotest.(check string) "reconstructs through chaos" value
            (ok (Store.Client.read alice ~item:"bulk"));
          let bob = coded_connect ~timeout:0.5 ~keyring ~n ~b "bob" bob_key in
          Alcotest.(check string) "bob too" value
            (ok (Store.Client.read bob ~item:"bulk"))))

let test_live_fragment_repair () =
  (* A full gossip mesh over real sockets: the metadata write reaches
     every server by anti-entropy, each holder's staged fragment turns
     verified, and when one holder loses its fragment the gossip loop's
     repair phase pulls peer fragments and recodes its own. *)
  let n = 4 and b = 1 in
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
  let servers =
    Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ())
  in
  (* reserve ephemeral ports first so every host can name all its peers *)
  let ports =
    Array.init n (fun _ ->
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt s Unix.SO_REUSEADDR true;
        Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        let p =
          match Unix.getsockname s with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> assert false
        in
        Unix.close s;
        p)
  in
  let hosts =
    Array.mapi
      (fun i server ->
        let peers =
          List.filteri (fun j _ -> j <> i)
            (Array.to_list (Array.map (fun p -> ("127.0.0.1", p)) ports))
        in
        Tcpnet.Server_host.start
          ~gossip:{ Tcpnet.Server_host.peers; period = 0.05 }
          ~server ~port:ports.(i) ())
      servers
  in
  Fun.protect ~finally:(fun () -> Array.iter Tcpnet.Server_host.stop hosts)
  @@ fun () ->
  let endpoints id =
    if id >= 0 && id < n then Some ("127.0.0.1", ports.(id)) else None
  in
  let value = bulk_value 30_000 in
  Tcpnet.Live.run ~endpoints (fun () ->
      let alice = coded_connect ~keyring ~n ~b "alice" alice_key in
      ok (Store.Client.write alice ~item:"bulk" value));
  let uid = Store.Uid.make ~group:"net" ~item:"bulk" in
  let await ?(tries = 100) what probe =
    let rec go tries =
      if probe () then ()
      else if tries = 0 then Alcotest.failf "timed out waiting for %s" what
      else begin
        Thread.delay 0.05;
        go (tries - 1)
      end
    in
    go tries
  in
  await "gossip to verify every fragment" (fun () ->
      Array.for_all (fun s -> Store.Server.fragment_count s = 1) servers);
  let stamp =
    match Store.Server.current_write servers.(0) uid with
    | Some w -> w.Store.Payload.stamp
    | None -> Alcotest.fail "no metadata at server 0"
  in
  let repairs0 = Store.Metrics.frag_repairs () in
  Store.Server.drop_fragment servers.(2) uid ~stamp ~index:3;
  await "the gossip loop to repair the fragment" (fun () ->
      Store.Server.fragment servers.(2) uid ~stamp ~index:3 <> None);
  Alcotest.(check bool) "repair counted in metrics" true
    (Store.Metrics.frag_repairs () > repairs0);
  (* the restored holder serves reads again *)
  Tcpnet.Live.run ~endpoints (fun () ->
      let alice = coded_connect ~keyring ~n ~b "alice" alice_key in
      Alcotest.(check string) "read after repair" value
        (ok (Store.Client.read alice ~item:"bulk")))

(* The heaviest cases here spend most of their time in real sleeps
   (reconnect backoff, gossip requeue timers).  They run in CI and under
   SOAK=1 locally, and are skipped otherwise to keep the default
   [dune runtest] loop snappy. *)
let soak = Sys.getenv_opt "SOAK" = Some "1"

let soak_case name speed fn =
  Alcotest.test_case name speed (fun () -> if soak then fn () else Alcotest.skip ())

let () =
  Alcotest.run "tcpnet"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "oversize" `Quick test_frame_oversize_rejected;
          Alcotest.test_case "pipelined codec" `Quick test_pipelined_codec;
          Alcotest.test_case "traced codec" `Quick test_traced_codec;
          QCheck_alcotest.to_alcotest traced_codec_qcheck;
        ] );
      ( "live",
        [
          Alcotest.test_case "write/read" `Quick test_live_write_read;
          Alcotest.test_case "other reader" `Quick test_live_other_reader;
          Alcotest.test_case "crash tolerated" `Quick test_live_crash_tolerated;
          Alcotest.test_case "gossip push" `Quick test_gossip_over_tcp;
        ] );
      ( "pool",
        [
          Alcotest.test_case "no fd leak on timeouts" `Quick
            test_no_fd_leak_on_timeouts;
          Alcotest.test_case "pipelined out-of-order" `Quick
            test_pipelined_out_of_order;
          Alcotest.test_case "framed errors" `Quick test_framed_errors;
          Alcotest.test_case "reconnect after restart" `Quick test_pool_reconnect;
          soak_case "backoff cap" `Quick test_backoff_cap;
          Alcotest.test_case "concurrent quorum clients" `Quick
            test_concurrent_quorum_clients;
        ] );
      ( "robustness",
        [
          soak_case "gossip requeue to dead peer" `Quick
            test_gossip_requeue_dead_peer;
          soak_case "pool health and suspicion" `Quick
            test_pool_health_suspicion;
          Alcotest.test_case "evict retires endpoint" `Quick test_pool_evict;
          Alcotest.test_case "live context reconstruction" `Quick
            test_live_context_reconstruction;
          Alcotest.test_case "hostile frames" `Quick test_frame_hostile_inputs;
          Alcotest.test_case "chaos determinism" `Quick test_chaos_determinism;
          Alcotest.test_case "chaos proxy faults" `Quick test_chaos_proxy_faults;
          Alcotest.test_case "byzantine hosts" `Quick test_byzantine_hosts;
        ] );
      ( "dispersal",
        [
          Alcotest.test_case "live roundtrip" `Quick test_live_dispersal_roundtrip;
          Alcotest.test_case "chaos holder" `Quick test_live_dispersal_under_chaos;
          Alcotest.test_case "gossip repair" `Quick test_live_fragment_repair;
        ] );
    ]
