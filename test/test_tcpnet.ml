(* Networked-transport tests: frame codec and full client sessions over
   real loopback sockets (the third interpreter of the Runtime effects). *)

let key_of name =
  Crypto.Rsa.generate ~bits:512 (Crypto.Prng.create ~seed:("tk-" ^ name))

let alice_key = key_of "alice"
let bob_key = key_of "bob"

let test_frame_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      Unix.close b)
    (fun () ->
      let payloads = [ ""; "x"; String.make 100_000 'q'; "\x00\x01\xff" ] in
      List.iter
        (fun p ->
          Tcpnet.Frame.write_frame a p;
          match Tcpnet.Frame.read_frame b with
          | Some p' -> Alcotest.(check string) "frame roundtrip" p p'
          | None -> Alcotest.fail "unexpected EOF")
        payloads;
      Unix.close a;
      Alcotest.(check bool) "EOF" true (Tcpnet.Frame.read_frame b = None))

let test_frame_oversize_rejected () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      Unix.close b)
    (fun () ->
      (* A length prefix over the cap must be refused without allocating. *)
      let evil = "\x7f\xff\xff\xff" in
      ignore (Unix.write_substring a evil 0 4);
      Unix.close a;
      Alcotest.(check bool) "oversize rejected" true (Tcpnet.Frame.read_frame b = None))

let test_pipelined_codec () =
  (* Pure codec roundtrips for the correlation-id sub-protocol. *)
  let open Tcpnet.Frame in
  (match parse_request (encode_call ~id:77 "payload") with
  | Some (Call { id = 77; payload = "payload" }) -> ()
  | _ -> Alcotest.fail "call roundtrip");
  (match parse_request (encode_oneway "gossip") with
  | Some (Oneway "gossip") -> ()
  | _ -> Alcotest.fail "oneway roundtrip");
  (match parse_response (encode_reply ~id:max_id (Some "r")) with
  | Some (Reply { id; payload = Some "r" }) ->
    Alcotest.(check int) "max id" max_id id
  | _ -> Alcotest.fail "reply roundtrip");
  (match parse_response (encode_reply ~id:3 None) with
  | Some (Reply { id = 3; payload = None }) -> ()
  | _ -> Alcotest.fail "no-reply roundtrip");
  (match parse_response (encode_reject ~id:9 "bad") with
  | Some (Reject { id = 9; message = "bad" }) -> ()
  | _ -> Alcotest.fail "reject roundtrip");
  (match parse_response (encode_conn_error "oops") with
  | Some (Conn_error "oops") -> ()
  | _ -> Alcotest.fail "conn-error roundtrip");
  Alcotest.(check bool) "unknown tag" true (parse_request "\xff" = None);
  Alcotest.(check bool) "empty" true (parse_request "" = None);
  Alcotest.(check bool) "short pipelined" true (parse_request "\x02\x00" = None)

let with_cluster ?(n = 4) ?(b = 1) fn =
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
  Store.Keyring.register keyring "bob" bob_key.Crypto.Rsa.public;
  let servers = Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ()) in
  let hosts =
    Array.map (fun server -> Tcpnet.Server_host.start ~server ~port:0 ()) servers
  in
  let eps = Array.map (fun h -> ("127.0.0.1", Tcpnet.Server_host.port h)) hosts in
  let endpoints id = if id >= 0 && id < n then Some eps.(id) else None in
  Fun.protect
    ~finally:(fun () -> Array.iter Tcpnet.Server_host.stop hosts)
    (fun () -> fn ~keyring ~endpoints ~hosts ~n ~b)

let connect ~keyring ~n ~b ?(timeout = 2.0) name key =
  let config = { (Store.Client.default_config ~n ~b) with Store.Client.timeout } in
  match Store.Client.connect ~config ~uid:name ~key ~keyring ~group:"net" () with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Store.Client.error_to_string e)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "error: %s" (Store.Client.error_to_string e)

let test_live_write_read () =
  with_cluster (fun ~keyring ~endpoints ~hosts:_ ~n ~b ->
      Tcpnet.Live.run ~endpoints (fun () ->
          let alice = connect ~keyring ~n ~b "alice" alice_key in
          ok (Store.Client.write alice ~item:"x" "over tcp");
          Alcotest.(check string) "read" "over tcp" (ok (Store.Client.read alice ~item:"x"));
          ok (Store.Client.disconnect alice);
          (* A second session restores the context from the store. *)
          let again = connect ~keyring ~n ~b "alice" alice_key in
          Alcotest.(check string) "cross-session" "over tcp"
            (ok (Store.Client.read again ~item:"x"))))

let test_live_other_reader () =
  with_cluster (fun ~keyring ~endpoints ~hosts:_ ~n ~b ->
      Tcpnet.Live.run ~endpoints (fun () ->
          let alice = connect ~keyring ~n ~b "alice" alice_key in
          ok (Store.Client.write alice ~item:"news" "hello bob");
          let bob = connect ~keyring ~n ~b "bob" bob_key in
          Alcotest.(check string) "bob reads" "hello bob"
            (ok (Store.Client.read bob ~item:"news"))))

let test_live_crash_tolerated () =
  with_cluster (fun ~keyring ~endpoints ~hosts ~n ~b ->
      Tcpnet.Live.run ~endpoints (fun () ->
          let alice = connect ~timeout:0.5 ~keyring ~n ~b "alice" alice_key in
          ok (Store.Client.write alice ~item:"x" "v1");
          (* Kill the last server: within the b=1 bound. *)
          Tcpnet.Server_host.stop hosts.(n - 1);
          Alcotest.(check string) "read with crash" "v1"
            (ok (Store.Client.read alice ~item:"x"));
          ok (Store.Client.write alice ~item:"x" "v2");
          Alcotest.(check string) "write with crash" "v2"
            (ok (Store.Client.read alice ~item:"x"))))

let test_gossip_over_tcp () =
  let n = 4 and b = 1 in
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
  let servers = Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ()) in
  (* Start hosts first without gossip to learn ports, then wire a second
     fleet is overkill: instead start sequentially with known ports. *)
  let hosts = Array.make n None in
  let port_of i = match hosts.(i) with Some h -> Tcpnet.Server_host.port h | None -> 0 in
  Array.iteri
    (fun i server -> hosts.(i) <- Some (Tcpnet.Server_host.start ~server ~port:0 ()))
    servers;
  let eps = Array.init n (fun i -> ("127.0.0.1", port_of i)) in
  (* Re-start server 0 host's gossip by pushing manually: exercise the
     push path through a one-way frame. *)
  let uid = Store.Uid.make ~group:"net" ~item:"g" in
  let w =
    Store.Signing.sign_write ~key:alice_key ~writer:"alice" ~uid
      ~stamp:(Store.Stamp.scalar 5) "gossiped"
  in
  let payload =
    Store.Payload.encode_envelope
      { Store.Payload.token = None; request = Store.Payload.Gossip_push { writes = [ w ]; have = [] } }
  in
  let host, port = eps.(2) in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd addr;
  Tcpnet.Frame.write_frame fd ("\x00" ^ payload);
  Unix.close fd;
  (* One-way delivery is asynchronous; poll briefly. *)
  let rec wait tries =
    if Store.Server.current_write servers.(2) uid <> None then true
    else if tries = 0 then false
    else begin
      Thread.delay 0.02;
      wait (tries - 1)
    end
  in
  let delivered = wait 100 in
  Array.iter (function Some h -> Tcpnet.Server_host.stop h | None -> ()) hosts;
  Alcotest.(check bool) "gossip push delivered over tcp" true delivered

(* --- pooled transport ---------------------------------------------------- *)

let meta_query_payload =
  Store.Payload.encode_envelope
    {
      Store.Payload.token = None;
      request =
        Store.Payload.Meta_query { uid = Store.Uid.make ~group:"net" ~item:"x" };
    }

(* A server that accepts connections and never replies: requests park in
   the pending table until their deadline. *)
let blackhole () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listener 16;
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let stop = ref false in
  let accepted = ref [] in
  let th =
    Thread.create
      (fun () ->
        while not !stop do
          match Unix.accept listener with
          | fd, _ -> accepted := fd :: !accepted
          | exception _ -> ()
        done)
      ()
  in
  let teardown () =
    stop := true;
    (* shutdown, not just close: close alone does not wake a thread
       blocked in [accept], and the join below would hang forever. *)
    (try Unix.shutdown listener Unix.SHUTDOWN_ALL with _ -> ());
    (try Unix.close listener with _ -> ());
    Thread.join th;
    List.iter (fun fd -> try Unix.close fd with _ -> ()) !accepted
  in
  (port, teardown)

let live_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_no_fd_leak_on_timeouts () =
  (* Regression for the legacy leak: per-call threads kept fds alive
     after the deadline. 100 timed-out calls through the pool must not
     grow the process fd table — one pooled connection serves them all,
     and abandoned requests are dropped at completion. *)
  let port, teardown = blackhole () in
  Fun.protect ~finally:teardown (fun () ->
      let pool = Tcpnet.Pool.create () in
      let ep = ("127.0.0.1", port) in
      (* First call dials the pooled connection; count fds after that. *)
      ignore (Tcpnet.Pool.call pool ~timeout:0.01 ep meta_query_payload);
      let before = live_fds () in
      for _ = 1 to 100 do
        match Tcpnet.Pool.call pool ~timeout:0.01 ep meta_query_payload with
        | Tcpnet.Pool.Dropped -> ()
        | _ -> Alcotest.fail "blackhole call should time out"
      done;
      let after = live_fds () in
      Alcotest.(check bool)
        (Printf.sprintf "fd growth bounded (%d -> %d)" before after)
        true
        (after - before <= 2);
      Alcotest.(check int) "no abandoned in-flight requests" 0
        (Tcpnet.Pool.in_flight pool);
      Alcotest.(check int) "single pooled connection" 1
        (Tcpnet.Pool.connection_count pool ep);
      Tcpnet.Pool.shutdown pool)

(* Replies in reverse order of the requests on one connection: the
   correlation id, not arrival order, matches replies to callers. *)
let test_pipelined_out_of_order () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listener 4;
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  (* The server keeps its end open until after the asserts: closing it
     early would let the pool's reader see EOF and unlink the connection
     before the "one shared connection" check runs. *)
  let server_fd = ref None in
  let server =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept listener in
        server_fd := Some fd;
        let reqs =
          List.init 2 (fun _ ->
              match Tcpnet.Frame.read_frame fd with
              | Some frame -> (
                match Tcpnet.Frame.parse_request frame with
                | Some (Tcpnet.Frame.Call { id; payload }) -> (id, payload)
                | _ -> Alcotest.fail "expected pipelined call")
              | None -> Alcotest.fail "unexpected EOF")
        in
        List.iter
          (fun (id, payload) ->
            Tcpnet.Frame.write_frame fd
              (Tcpnet.Frame.encode_reply ~id (Some ("echo:" ^ payload))))
          (List.rev reqs))
      ()
  in
  let pool = Tcpnet.Pool.create ~max_connections_per_endpoint:1 () in
  let ep = ("127.0.0.1", port) in
  let result = Array.make 2 Tcpnet.Pool.Dropped in
  let callers =
    List.init 2 (fun i ->
        Thread.create
          (fun () ->
            (* Stagger so both are in flight on the single connection
               before the server replies to either. *)
            if i = 1 then Thread.delay 0.02;
            result.(i) <-
              Tcpnet.Pool.call pool ~timeout:2.0 ep (Printf.sprintf "req%d" i))
          ())
  in
  List.iter Thread.join callers;
  Thread.join server;
  Array.iteri
    (fun i r ->
      match r with
      | Tcpnet.Pool.Reply p ->
        Alcotest.(check string) "correlated reply" (Printf.sprintf "echo:req%d" i) p
      | _ -> Alcotest.fail "expected a reply")
    result;
  Alcotest.(check int) "one shared connection" 1
    (Tcpnet.Pool.connection_count pool ep);
  Tcpnet.Pool.shutdown pool;
  (match !server_fd with Some fd -> (try Unix.close fd with _ -> ()) | None -> ());
  Unix.close listener

let test_framed_errors () =
  with_cluster (fun ~keyring:_ ~endpoints:_ ~hosts ~n:_ ~b:_ ->
      let ep = ("127.0.0.1", Tcpnet.Server_host.port hosts.(0)) in
      (* An unparsable frame gets a framed connection error, not a
         silent drop, and the connection keeps serving. *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, snd ep));
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          Tcpnet.Frame.write_frame fd "\xee\xff";
          (match Tcpnet.Frame.read_frame fd with
          | Some frame -> (
            match Tcpnet.Frame.parse_response frame with
            | Some (Tcpnet.Frame.Conn_error _) -> ()
            | _ -> Alcotest.fail "expected framed connection error")
          | None -> Alcotest.fail "server dropped instead of replying");
          (* Still in sync: a well-formed call on the same connection works. *)
          Tcpnet.Frame.write_frame fd
            (Tcpnet.Frame.encode_call ~id:5 meta_query_payload);
          match Tcpnet.Frame.read_frame fd with
          | Some frame -> (
            match Tcpnet.Frame.parse_response frame with
            | Some (Tcpnet.Frame.Reply { id = 5; payload = Some _ }) -> ()
            | _ -> Alcotest.fail "expected reply after error")
          | None -> Alcotest.fail "connection died after framed error");
      (* A malformed envelope inside a well-formed call is rejected with
         a message — the pool distinguishes it from a dead connection. *)
      let pool = Tcpnet.Pool.create () in
      (match Tcpnet.Pool.call pool ~timeout:2.0 ep "not-an-envelope" with
      | Tcpnet.Pool.Rejected _ -> ()
      | Tcpnet.Pool.Reply _ -> Alcotest.fail "garbage accepted"
      | Tcpnet.Pool.No_reply | Tcpnet.Pool.Dropped ->
        Alcotest.fail "rejection not distinguishable from drop");
      Tcpnet.Pool.shutdown pool)

let test_pool_reconnect () =
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
  let server = Store.Server.create ~id:0 ~keyring ~n:1 ~b:0 () in
  let host1 = Tcpnet.Server_host.start ~server ~port:0 () in
  let port = Tcpnet.Server_host.port host1 in
  let ep = ("127.0.0.1", port) in
  let pool = Tcpnet.Pool.create ~backoff_base:0.01 ~backoff_max:0.05 () in
  (match Tcpnet.Pool.call pool ~timeout:2.0 ep meta_query_payload with
  | Tcpnet.Pool.Reply _ -> ()
  | _ -> Alcotest.fail "first call should succeed");
  let before = (Store.Metrics.read ()).Store.Metrics.tcp_reconnects in
  Tcpnet.Server_host.stop host1;
  (* Restart on the same port: the pool must notice the dead connection
     and transparently redial (within its backoff). *)
  let host2 = Tcpnet.Server_host.start ~server ~port () in
  let rec until tries =
    match Tcpnet.Pool.call pool ~timeout:0.5 ep meta_query_payload with
    | Tcpnet.Pool.Reply _ -> true
    | _ ->
      if tries = 0 then false
      else begin
        Thread.delay 0.05;
        until (tries - 1)
      end
  in
  let reconnected = until 40 in
  let after = (Store.Metrics.read ()).Store.Metrics.tcp_reconnects in
  Tcpnet.Server_host.stop host2;
  Tcpnet.Pool.shutdown pool;
  Alcotest.(check bool) "calls succeed after restart" true reconnected;
  Alcotest.(check bool) "a reconnect was counted" true (after > before)

let test_backoff_cap () =
  (* An endpoint nobody listens on: each dial attempt fails and doubles
     the backoff until the cap. *)
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  Unix.close listener (* bound but never listening: connects are refused *);
  let cap = 0.04 in
  let pool = Tcpnet.Pool.create ~backoff_base:0.01 ~backoff_max:cap () in
  let ep = ("127.0.0.1", port) in
  let backoffs = ref [] in
  for _ = 1 to 6 do
    (match Tcpnet.Pool.call pool ~timeout:0.2 ep meta_query_payload with
    | Tcpnet.Pool.Dropped -> ()
    | _ -> Alcotest.fail "dead endpoint should drop");
    let b = Tcpnet.Pool.current_backoff pool ep in
    backoffs := b :: !backoffs;
    (* Sleep past the window so the next call really redials. *)
    Thread.delay (b +. 0.005)
  done;
  Tcpnet.Pool.shutdown pool;
  (match !backoffs with
  | last :: _ -> Alcotest.(check (float 1e-9)) "saturates at the cap" cap last
  | [] -> assert false);
  List.iter
    (fun b -> Alcotest.(check bool) "never exceeds the cap" true (b <= cap +. 1e-9))
    !backoffs;
  (* The first failure starts at the base, not the cap. *)
  match List.rev !backoffs with
  | first :: _ -> Alcotest.(check (float 1e-9)) "starts at the base" 0.01 first
  | [] -> assert false

let test_concurrent_quorum_clients () =
  with_cluster (fun ~keyring ~endpoints ~hosts:_ ~n ~b ->
      let errors = ref [] in
      let errors_lock = Mutex.create () in
      let client name key items =
        Thread.create
          (fun () ->
            try
              Tcpnet.Live.run ~endpoints (fun () ->
                  let session = connect ~keyring ~n ~b name key in
                  List.iter
                    (fun item ->
                      ok (Store.Client.write session ~item (name ^ ":" ^ item)))
                    items;
                  List.iter
                    (fun item ->
                      Alcotest.(check string) "concurrent read" (name ^ ":" ^ item)
                        (ok (Store.Client.read session ~item)))
                    items;
                  ok (Store.Client.disconnect session))
            with e ->
              Mutex.lock errors_lock;
              errors := Printexc.to_string e :: !errors;
              Mutex.unlock errors_lock)
          ()
      in
      let items prefix = List.init 5 (fun i -> Printf.sprintf "%s%d" prefix i) in
      let threads =
        [
          client "alice" alice_key (items "a");
          client "bob" bob_key (items "b");
          client "alice" alice_key (items "a2-");
          client "bob" bob_key (items "b2-");
        ]
      in
      List.iter Thread.join threads;
      match !errors with
      | [] -> ()
      | e :: _ -> Alcotest.failf "concurrent client failed: %s" e)

let () =
  Alcotest.run "tcpnet"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "oversize" `Quick test_frame_oversize_rejected;
          Alcotest.test_case "pipelined codec" `Quick test_pipelined_codec;
        ] );
      ( "live",
        [
          Alcotest.test_case "write/read" `Quick test_live_write_read;
          Alcotest.test_case "other reader" `Quick test_live_other_reader;
          Alcotest.test_case "crash tolerated" `Quick test_live_crash_tolerated;
          Alcotest.test_case "gossip push" `Quick test_gossip_over_tcp;
        ] );
      ( "pool",
        [
          Alcotest.test_case "no fd leak on timeouts" `Quick
            test_no_fd_leak_on_timeouts;
          Alcotest.test_case "pipelined out-of-order" `Quick
            test_pipelined_out_of_order;
          Alcotest.test_case "framed errors" `Quick test_framed_errors;
          Alcotest.test_case "reconnect after restart" `Quick test_pool_reconnect;
          Alcotest.test_case "backoff cap" `Quick test_backoff_cap;
          Alcotest.test_case "concurrent quorum clients" `Quick
            test_concurrent_quorum_clients;
        ] );
    ]
