open Wire

(* ------------------------------------------------------------------ *)
(* Primitive combinators                                               *)
(* ------------------------------------------------------------------ *)

let test_varint_edges () =
  List.iter
    (fun v ->
      let enc = Codec.encode (fun e v -> Codec.Enc.varint e v) v in
      Alcotest.(check int) (Printf.sprintf "varint %d" v) v
        (Codec.decode Codec.Dec.varint enc))
    [ 0; 1; 127; 128; 300; 16384; 1 lsl 30; max_int / 2 ];
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Codec.Enc.varint: negative") (fun () ->
      ignore (Codec.encode (fun e v -> Codec.Enc.varint e v) (-1)))

let test_float_roundtrip () =
  List.iter
    (fun v ->
      let enc = Codec.encode (fun e v -> Codec.Enc.float e v) v in
      let v' = Codec.decode Codec.Dec.float enc in
      Alcotest.(check bool) (Printf.sprintf "float %g" v) true
        (v = v' || (Float.is_nan v && Float.is_nan v')))
    [ 0.0; -0.0; 1.5; -1e300; Float.nan; Float.infinity; Float.min_float ]

let test_string_and_containers () =
  let enc_payload e (s, opt, l, flag) =
    Codec.Enc.string e s;
    Codec.Enc.option e Codec.Enc.string opt;
    Codec.Enc.list e Codec.Enc.varint l;
    Codec.Enc.bool e flag
  in
  let dec_payload d =
    let s = Codec.Dec.string d in
    let opt = Codec.Dec.option d Codec.Dec.string in
    let l = Codec.Dec.list d Codec.Dec.varint in
    let flag = Codec.Dec.bool d in
    (s, opt, l, flag)
  in
  let v = ("hello\x00world", Some "x", [ 1; 2; 3; 0 ], true) in
  Alcotest.(check bool) "container roundtrip" true
    (Codec.decode dec_payload (Codec.encode enc_payload v) = v)

let test_malformed_inputs () =
  let check_error name input dec =
    match Codec.decode dec input with
    | exception Codec.Error _ -> ()
    | _ -> Alcotest.failf "%s: expected Codec.Error" name
  in
  check_error "truncated string" "\x05ab" Codec.Dec.string;
  check_error "trailing bytes" "\x01ab" Codec.Dec.string;
  check_error "bad option tag" "\x07" (fun d -> Codec.Dec.option d Codec.Dec.u8);
  check_error "bad bool" "\x02" Codec.Dec.bool;
  check_error "overlong varint" "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"
    Codec.Dec.varint;
  (* Regression: 8 continuation bytes then 0x61 overflowed the 63-bit
     int into a negative length (found by fuzzing). *)
  check_error "varint 63-bit overflow" "\x80\x80\x80\x80\x80\x80\x80\x80a"
    Codec.Dec.varint;
  check_error "negative string length"
    "\x80\x80\x80\x80\x80\x80\x80\x80a" Codec.Dec.string;
  check_error "list count overrun" "\xf0\x01" (fun d ->
      Codec.Dec.list d Codec.Dec.u8);
  Alcotest.(check bool) "decode_opt absorbs" true
    (Codec.decode_opt Codec.Dec.string "\x05ab" = None)

(* ------------------------------------------------------------------ *)
(* Fuzzing: decoders must never crash, whatever the bytes             *)
(* ------------------------------------------------------------------ *)

let prop_codec_fuzz =
  QCheck.Test.make ~name:"primitive decoders are total" ~count:500 QCheck.string
    (fun junk ->
      let safe dec = match Codec.decode dec junk with
        | _ -> true
        | exception Codec.Error _ -> true
      in
      safe Codec.Dec.varint
      && safe Codec.Dec.string
      && safe (fun d -> Codec.Dec.list d Codec.Dec.string)
      && safe (fun d -> Codec.Dec.option d Codec.Dec.float))

let prop_envelope_fuzz =
  QCheck.Test.make ~name:"store envelope decoder is total" ~count:500
    QCheck.string
    (fun junk ->
      match Store.Payload.decode_envelope junk with
      | Some _ | None -> true)

let prop_response_fuzz =
  QCheck.Test.make ~name:"store response decoder is total" ~count:500
    QCheck.string
    (fun junk ->
      match Store.Payload.decode_response junk with Some _ | None -> true)

(* Bit-flip fuzzing: valid envelopes with one corrupted byte must decode
   to None or to a *different* well-formed value, never crash. *)
let prop_envelope_bitflip =
  QCheck.Test.make ~name:"bit-flipped envelopes never crash" ~count:300
    QCheck.(pair small_nat small_nat)
    (fun (pos, bit) ->
      let uid = Store.Uid.make ~group:"g" ~item:"x" in
      let env =
        {
          Store.Payload.token = Some "token"; epoch = 0;
          request =
            Store.Payload.Write_req
              {
                write =
                  {
                    Store.Payload.uid;
                    stamp = Store.Stamp.scalar 42;
                    wctx = None;
                    value = "some value";
                    writer = "alice";
                    evidence = Store.Payload.Sig (String.make 64 's');
                    frags = None;
                  };
                await_ack = true;
              };
        }
      in
      let encoded = Store.Payload.encode_envelope env in
      let pos = pos mod String.length encoded in
      let flipped =
        String.mapi
          (fun i c ->
            if i = pos then Char.chr (Char.code c lxor (1 lsl (bit mod 8))) else c)
          encoded
      in
      match Store.Payload.decode_envelope flipped with Some _ | None -> true)

(* Fixed-width codec fields: exact round-trip, length enforcement on
   both sides. *)
let test_fixed_roundtrip () =
  let h = String.init 32 (fun i -> Char.chr (i * 7 mod 256)) in
  let encoded =
    Codec.encode
      (fun enc () ->
        Codec.Enc.fixed enc ~len:32 h;
        Codec.Enc.string enc "tail")
      ()
  in
  let h', tail =
    Codec.decode
      (fun dec ->
        let h' = Codec.Dec.fixed dec ~len:32 in
        (h', Codec.Dec.string dec))
      encoded
  in
  Alcotest.(check string) "fixed field" h h';
  Alcotest.(check string) "rest intact" "tail" tail;
  Alcotest.check_raises "wrong width rejected at encode"
    (Invalid_argument "Codec.Enc.fixed: expected 32 bytes, got 3") (fun () ->
      ignore (Codec.encode (fun enc () -> Codec.Enc.fixed enc ~len:32 "abc") ()));
  Alcotest.(check bool) "truncated input fails" true
    (match Codec.decode (fun dec -> Codec.Dec.fixed dec ~len:32) "short" with
    | _ -> false
    | exception Codec.Error _ -> true)

(* Every evidence form survives the write codec round-trip. *)
let test_evidence_roundtrip () =
  let uid = Store.Uid.make ~group:"g" ~item:"x" in
  let base evidence =
    {
      Store.Payload.uid;
      stamp = Store.Stamp.scalar 7;
      wctx = None;
      value = "v";
      writer = "alice";
      evidence;
      frags = None;
    }
  in
  let roundtrip w =
    let encoded =
      Codec.encode (fun enc () -> Store.Payload.encode_write enc w) ()
    in
    Codec.decode Store.Payload.decode_write encoded
  in
  let h i = String.make 32 (Char.chr i) in
  List.iter
    (fun w -> Alcotest.(check bool) "write round-trips" true (roundtrip w = w))
    [
      base (Store.Payload.Sig (String.make 64 's'));
      base
        (Store.Payload.Batch
           {
             root = h 1;
             size = 8;
             proof =
               {
                 Crypto.Merkle.index = 3;
                 path = [ (h 2, `Left); (h 3, `Right); (h 4, `Right) ];
               };
             root_sig = String.make 64 'r';
           });
      base (Store.Payload.Mac [ (0, h 5); (2, h 6); (3, h 7) ]);
    ]

let qsuite props = List.map QCheck_alcotest.to_alcotest props

let () =
  Alcotest.run "wire"
    [
      ( "codec",
        [
          Alcotest.test_case "varint edges" `Quick test_varint_edges;
          Alcotest.test_case "float" `Quick test_float_roundtrip;
          Alcotest.test_case "containers" `Quick test_string_and_containers;
          Alcotest.test_case "malformed" `Quick test_malformed_inputs;
          Alcotest.test_case "fixed fields" `Quick test_fixed_roundtrip;
          Alcotest.test_case "evidence forms" `Quick test_evidence_roundtrip;
        ] );
      ( "fuzz",
        qsuite
          [
            prop_codec_fuzz; prop_envelope_fuzz; prop_response_fuzz;
            prop_envelope_bitflip;
          ] );
    ]
