open Store

(* ------------------------------------------------------------------ *)
(* Fixture                                                            *)
(* ------------------------------------------------------------------ *)

let key_cache : (string, Crypto.Rsa.keypair) Hashtbl.t = Hashtbl.create 8

let key_of name =
  match Hashtbl.find_opt key_cache name with
  | Some k -> k
  | None ->
    let k = Crypto.Rsa.generate ~bits:512 (Crypto.Prng.create ~seed:("key-" ^ name)) in
    Hashtbl.replace key_cache name k;
    k

type world = {
  n : int;
  b : int;
  keyring : Keyring.t;
  servers : Server.t array;
  hmap : (now:float -> from:int -> string -> string option) array;
}

let clients = [ "alice"; "bob"; "carol"; "mallory" ]

let make_world ?(n = 4) ?(b = 1) ?server_config () =
  let keyring = Keyring.create () in
  List.iter
    (fun c ->
      Keyring.register keyring c (key_of c).Crypto.Rsa.public;
      for server = 0 to n - 1 do
        Keyring.register_mac keyring ~client:c ~server
          (Crypto.Sha256.digest (Printf.sprintf "mac!%s!%d" c server))
      done)
    clients;
  let servers =
    Array.init n (fun id ->
        Server.create ?config:server_config ~id ~keyring ~n ~b ())
  in
  let hmap = Array.map Server.handler servers in
  { n; b; keyring; servers; hmap }

let wrap w i behavior = w.hmap.(i) <- Faults.wrap behavior w.servers.(i)

let handlers w dst ~from request =
  if dst >= 0 && dst < w.n then w.hmap.(dst) ~now:0.0 ~from request else None

let in_world w fn = Sim.Direct.run ~handlers:(handlers w) fn

let connect ?(cfg = Fun.id) ?recover w name ~group =
  let config = cfg (Client.default_config ~n:w.n ~b:w.b) in
  match
    Client.connect ?recover ~config ~uid:name ~key:(key_of name)
      ~keyring:w.keyring ~group ()
  with
  | Ok t -> t
  | Error e -> Alcotest.failf "connect %s failed: %s" name (Client.error_to_string e)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Client.error_to_string e)

let expect_error = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> e

let flood w = Gossip.flood ~servers:w.servers

(* ------------------------------------------------------------------ *)
(* Uid                                                                *)
(* ------------------------------------------------------------------ *)

let test_uid () =
  let u = Uid.make ~group:"taxes" ~item:"2025" in
  Alcotest.(check string) "to_string" "taxes/2025" (Uid.to_string u);
  (match Uid.of_string "taxes/2025" with
  | Some u' -> Alcotest.(check bool) "roundtrip" true (Uid.equal u u')
  | None -> Alcotest.fail "parse failed");
  Alcotest.(check bool) "no slash" true (Uid.of_string "noslash" = None);
  Alcotest.(check bool) "empty item" true (Uid.of_string "g/" = None);
  Alcotest.check_raises "bad make"
    (Invalid_argument "Uid.make: parts must be non-empty and '/'-free")
    (fun () -> ignore (Uid.make ~group:"a/b" ~item:"c"))

(* ------------------------------------------------------------------ *)
(* Stamp                                                              *)
(* ------------------------------------------------------------------ *)

let test_stamp_order () =
  let s1 = Stamp.scalar 1 and s2 = Stamp.scalar 2 in
  Alcotest.(check bool) "scalar order" true (Stamp.newer s2 ~than:s1);
  Alcotest.(check bool) "zero below all" true (Stamp.newer s1 ~than:Stamp.zero);
  let m1 = Stamp.multi ~time:5 ~writer:"alice" ~value:"x" in
  let m2 = Stamp.multi ~time:5 ~writer:"bob" ~value:"y" in
  let m3 = Stamp.multi ~time:6 ~writer:"alice" ~value:"z" in
  Alcotest.(check bool) "time first" true (Stamp.newer m3 ~than:m2);
  Alcotest.(check bool) "writer breaks tie" true (Stamp.newer m2 ~than:m1);
  Alcotest.(check bool) "total" true (Stamp.compare m1 m2 = -Stamp.compare m2 m1)

let test_stamp_fork () =
  let a = Stamp.multi ~time:5 ~writer:"mallory" ~value:"one" in
  let b = Stamp.multi ~time:5 ~writer:"mallory" ~value:"two" in
  let c = Stamp.multi ~time:5 ~writer:"alice" ~value:"two" in
  Alcotest.(check bool) "fork detected" true (Stamp.is_fork a b);
  Alcotest.(check bool) "different writers no fork" false (Stamp.is_fork a c);
  Alcotest.(check bool) "same stamp no fork" false (Stamp.is_fork a a);
  Alcotest.(check bool) "digest binds value" true (Stamp.matches_value a "one");
  Alcotest.(check bool) "digest rejects other" false (Stamp.matches_value a "two")

let test_stamp_codec () =
  let roundtrip s =
    let encoded = Wire.Codec.encode Stamp.encode s in
    Alcotest.(check bool) "roundtrip" true
      (Stamp.equal s (Wire.Codec.decode Stamp.decode encoded))
  in
  roundtrip (Stamp.scalar 0);
  roundtrip (Stamp.scalar 123456789);
  roundtrip (Stamp.multi ~time:42 ~writer:"w" ~value:"v")

(* ------------------------------------------------------------------ *)
(* Context                                                            *)
(* ------------------------------------------------------------------ *)

let u1 = Uid.make ~group:"g" ~item:"x1"
let u2 = Uid.make ~group:"g" ~item:"x2"

let test_context_basics () =
  let c = Context.empty in
  Alcotest.(check bool) "empty find" true (Stamp.equal (Context.find c u1) Stamp.zero);
  let c = Context.set c u1 (Stamp.scalar 3) in
  let c = Context.observe c u1 (Stamp.scalar 2) in
  Alcotest.(check bool) "observe keeps max" true
    (Stamp.equal (Context.find c u1) (Stamp.scalar 3));
  let c = Context.observe c u1 (Stamp.scalar 7) in
  Alcotest.(check bool) "observe advances" true
    (Stamp.equal (Context.find c u1) (Stamp.scalar 7))

let test_context_merge_dominates () =
  let a = Context.of_bindings [ (u1, Stamp.scalar 5); (u2, Stamp.scalar 1) ] in
  let b = Context.of_bindings [ (u1, Stamp.scalar 3); (u2, Stamp.scalar 9) ] in
  let m = Context.merge a b in
  Alcotest.(check bool) "merge pointwise max" true
    (Stamp.equal (Context.find m u1) (Stamp.scalar 5)
    && Stamp.equal (Context.find m u2) (Stamp.scalar 9));
  Alcotest.(check bool) "merge dominates both" true
    (Context.dominates m a && Context.dominates m b);
  Alcotest.(check bool) "a does not dominate b" false (Context.dominates a b);
  Alcotest.(check bool) "empty dominated by all" true
    (Context.dominates a Context.empty)

let context_gen =
  QCheck.map
    (fun entries ->
      Context.of_bindings
        (List.map
           (fun (i, v) ->
             (Uid.make ~group:"g" ~item:("i" ^ string_of_int (i mod 8)), Stamp.scalar (abs v)))
           entries))
    QCheck.(small_list (pair small_nat int))

let prop_merge_commutes =
  QCheck.Test.make ~name:"context merge commutes" ~count:200
    (QCheck.pair context_gen context_gen)
    (fun (a, b) -> Context.equal (Context.merge a b) (Context.merge b a))

let prop_merge_idempotent =
  QCheck.Test.make ~name:"context merge idempotent" ~count:200 context_gen
    (fun a -> Context.equal (Context.merge a a) a)

let prop_merge_dominates =
  QCheck.Test.make ~name:"merge dominates operands" ~count:200
    (QCheck.pair context_gen context_gen)
    (fun (a, b) ->
      let m = Context.merge a b in
      Context.dominates m a && Context.dominates m b)

let prop_context_codec =
  QCheck.Test.make ~name:"context codec roundtrip" ~count:200 context_gen
    (fun c ->
      let enc = Wire.Codec.encode Context.encode c in
      Context.equal c (Wire.Codec.decode Context.decode enc))

(* ------------------------------------------------------------------ *)
(* Quorums                                                            *)
(* ------------------------------------------------------------------ *)

let test_quorum_formulas () =
  Alcotest.(check int) "ctx quorum n=4 b=1" 3 (Quorums.context_quorum ~n:4 ~b:1);
  Alcotest.(check int) "ctx quorum n=7 b=2" 5 (Quorums.context_quorum ~n:7 ~b:2);
  Alcotest.(check int) "ctx quorum n=10 b=3" 7 (Quorums.context_quorum ~n:10 ~b:3);
  Alcotest.(check int) "masking n=7 b=2" 6 (Quorums.masking_quorum ~n:7 ~b:2);
  Alcotest.(check int) "write set b=2" 3 (Quorums.write_set ~b:2);
  Alcotest.(check int) "mw read b=2" 5 (Quorums.mw_read_quorum ~b:2);
  Alcotest.(check int) "majority n=7" 4 (Quorums.majority_quorum ~n:7);
  Alcotest.(check bool) "validate ok" true (Quorums.validate ~n:7 ~b:2 = Ok ());
  Alcotest.(check bool) "validate rejects" true
    (match Quorums.validate ~n:6 ~b:2 with Error _ -> true | Ok () -> false);
  Alcotest.(check int) "max_b 10" 3 (Quorums.max_b ~n:10)

let prop_context_overlap =
  (* The paper's core claim: two context quorums always share at least
     b+1 servers, hence at least one non-faulty one. *)
  QCheck.Test.make ~name:"context quorums overlap in >= b+1" ~count:500
    QCheck.(pair (int_range 1 60) (int_range 0 20))
    (fun (n, b) ->
      QCheck.assume (n >= (3 * b) + 1);
      Quorums.context_overlap ~n ~b >= b + 1
      && Quorums.context_quorum ~n ~b <= n - b (* reachable with b silent *))

let prop_masking_larger =
  QCheck.Test.make ~name:"masking quorum is never smaller" ~count:500
    QCheck.(pair (int_range 1 60) (int_range 0 20))
    (fun (n, b) ->
      QCheck.assume (n >= (3 * b) + 1);
      Quorums.masking_quorum ~n ~b >= Quorums.context_quorum ~n ~b)

(* ------------------------------------------------------------------ *)
(* Payload codec                                                      *)
(* ------------------------------------------------------------------ *)

let sample_write =
  {
    Payload.uid = u1;
    stamp = Stamp.scalar 9;
    wctx = Some (Context.of_bindings [ (u1, Stamp.scalar 9); (u2, Stamp.scalar 2) ]);
    value = "hello world";
    writer = "alice";
    evidence = Payload.Sig (String.make 64 '\x01');
    frags = None;
  }

let test_payload_roundtrips () =
  let requests =
    [
      Payload.Ctx_read { client = "alice"; group = "g" };
      Payload.Ctx_write
        {
          client = "alice";
          group = "g";
          record = { Payload.seq = 3; ctx = Context.empty; signature = "sig" };
        };
      Payload.Meta_query { uid = u1 };
      Payload.Value_read { uid = u2; stamp = Stamp.scalar 4 };
      Payload.Write_req { write = sample_write; await_ack = true };
      Payload.Log_query { uid = u1 };
      Payload.Group_query { group = "g" };
      Payload.Gossip_push { writes = [ sample_write; sample_write ]; have = [ (u1, Stamp.scalar 9) ]; epoch = None };
    ]
  in
  List.iter
    (fun request ->
      let env = { Payload.token = Some "tok"; epoch = 0; request } in
      match Payload.decode_envelope (Payload.encode_envelope env) with
      | Some env' ->
        Alcotest.(check bool) "envelope roundtrip" true (env = env')
      | None -> Alcotest.fail "envelope decode failed")
    requests;
  let responses =
    [
      Payload.Ctx_reply None;
      Payload.Ctx_reply (Some { Payload.seq = 1; ctx = Context.empty; signature = "s" });
      Payload.Meta_reply { stamp = Some (Stamp.scalar 2); writer_faulty = true };
      Payload.Meta_reply { stamp = None; writer_faulty = false };
      Payload.Value_reply (Some sample_write);
      Payload.Value_reply None;
      Payload.Ack;
      Payload.Log_reply { writes = [ sample_write ]; writer_faulty = false };
      Payload.Group_reply [ sample_write ];
      Payload.Denied "nope";
    ]
  in
  List.iter
    (fun response ->
      match Payload.decode_response (Payload.encode_response response) with
      | Some r -> Alcotest.(check bool) "response roundtrip" true (r = response)
      | None -> Alcotest.fail "response decode failed")
    responses;
  Alcotest.(check bool) "garbage rejected" true
    (Payload.decode_envelope "\xff\xff\xff" = None)

(* ------------------------------------------------------------------ *)
(* Access control                                                     *)
(* ------------------------------------------------------------------ *)

let test_access_control () =
  let svc = Access_control.create_service ~secret:"s3cret" in
  let token =
    Access_control.issue svc ~client:"alice" ~group:"g" ~rights:Access_control.Read_write
      ~expires:100.0
  in
  let check ?expect_client ~now ~token ~op () =
    Access_control.check svc ~now ~token ?expect_client ~group:"g" ~op ()
  in
  Alcotest.(check bool) "authorized" true
    (check ~now:1.0 ~token:(Some token) ~op:`Write ~expect_client:"alice" () = Authorized);
  Alcotest.(check bool) "read ok" true
    (check ~now:1.0 ~token:(Some token) ~op:`Read () = Authorized);
  Alcotest.(check bool) "expired" true
    (check ~now:200.0 ~token:(Some token) ~op:`Read () <> Authorized);
  Alcotest.(check bool) "missing" true
    (check ~now:1.0 ~token:None ~op:`Read () <> Authorized);
  Alcotest.(check bool) "wrong client" true
    (check ~now:1.0 ~token:(Some token) ~op:`Write ~expect_client:"bob" () <> Authorized);
  let ro =
    Access_control.issue svc ~client:"alice" ~group:"g" ~rights:Access_control.Read_only
      ~expires:100.0
  in
  Alcotest.(check bool) "read-only blocks writes" true
    (check ~now:1.0 ~token:(Some ro) ~op:`Write ~expect_client:"alice" () <> Authorized);
  let tampered = String.sub token 0 (String.length token - 2) ^ "zz" in
  Alcotest.(check bool) "tampered" true
    (check ~now:1.0 ~token:(Some tampered) ~op:`Read () <> Authorized);
  let other = Access_control.create_service ~secret:"other" in
  let foreign =
    Access_control.issue other ~client:"alice" ~group:"g"
      ~rights:Access_control.Read_write ~expires:100.0
  in
  Alcotest.(check bool) "foreign issuer" true
    (check ~now:1.0 ~token:(Some foreign) ~op:`Read () <> Authorized)

(* ------------------------------------------------------------------ *)
(* Keyring                                                            *)
(* ------------------------------------------------------------------ *)

let test_keyring () =
  let k = Keyring.create () in
  Keyring.register k "alice" (key_of "alice").Crypto.Rsa.public;
  Keyring.register k "alice" (key_of "alice").Crypto.Rsa.public (* idempotent *);
  Alcotest.(check bool) "known" true (Keyring.known k "alice");
  Alcotest.(check bool) "unknown" false (Keyring.known k "eve");
  Alcotest.check_raises "rebind rejected"
    (Invalid_argument "Keyring.register: uid already bound: alice") (fun () ->
      Keyring.register k "alice" (key_of "bob").Crypto.Rsa.public)

(* ------------------------------------------------------------------ *)
(* Single-writer protocol (Fig. 2)                                    *)
(* ------------------------------------------------------------------ *)

let test_write_read_roundtrip () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"med" in
      ok (Client.write alice ~item:"records" "blood type O+");
      Alcotest.(check string) "read back" "blood type O+"
        (ok (Client.read alice ~item:"records")));
  (* The write reached exactly b+1 servers; the rest are empty. *)
  let uid = Uid.make ~group:"med" ~item:"records" in
  let have =
    Array.fold_left
      (fun acc s -> acc + if Server.current_write s uid <> None then 1 else 0)
      0 w.servers
  in
  Alcotest.(check int) "b+1 copies before gossip" (w.b + 1) have

let test_read_other_client () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"news" in
      ok (Client.write alice ~item:"letter" "school closed friday");
      let bob = connect w "bob" ~group:"news" in
      Alcotest.(check string) "single writer, many readers" "school closed friday"
        (ok (Client.read bob ~item:"letter")))

let test_read_not_found () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      match expect_error (Client.read alice ~item:"ghost") with
      | Client.Not_found _ -> ()
      | e -> Alcotest.failf "expected Not_found, got %s" (Client.error_to_string e))

let test_overwrite_returns_latest () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v1");
      ok (Client.write alice ~item:"x" "v2");
      ok (Client.write alice ~item:"x" "v3");
      Alcotest.(check string) "latest" "v3" (ok (Client.read alice ~item:"x")))

(* A reader whose preferred servers are behind must not regress below its
   context: the read expands to more servers (Fig. 2's "contact
   additional servers"). *)
let test_mrc_expansion_beats_stale_servers () =
  let w = make_world () in
  let stale_first cfg = { cfg with Client.servers = [ 2; 3; 0; 1 ] } in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v1");
      ok (Client.disconnect alice));
  flood w;
  (* Everyone has v1. Now v2 lands only on servers 0 and 1. *)
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v2");
      ok (Client.disconnect alice));
  in_world w (fun () ->
      (* Bob first reads v2 via servers 0,1 then prefers stale 2,3: MRC
         must still return v2. *)
      let bob = connect w "bob" ~group:"g" in
      Alcotest.(check string) "sees v2" "v2" (ok (Client.read bob ~item:"x")));
  in_world w (fun () ->
      let bob = connect w "bob" ~group:"g" ~cfg:stale_first in
      Alcotest.(check string) "fresh client on stale servers gets v1 (allowed)"
        "v1"
        (ok (Client.read bob ~item:"x")));
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      (* Alice's own context demands v2 even on stale-first order. *)
      let alice_stale = connect w "alice" ~group:"g" ~cfg:stale_first in
      ignore alice;
      Alcotest.(check string) "context forces expansion" "v2"
        (ok (Client.read alice_stale ~item:"x")))

let test_session_context_roundtrip () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v1");
      ok (Client.disconnect alice));
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      Alcotest.(check bool) "context restored" true
        (Stamp.compare
           (Context.find (Client.context alice) (Uid.make ~group:"g" ~item:"x"))
           Stamp.zero
        > 0);
      (* Read-your-writes across sessions. *)
      Alcotest.(check string) "read your writes" "v1"
        (ok (Client.read alice ~item:"x")));
  in_world w (fun () ->
      (* Sessions are independent: a third connect/disconnect cycle works. *)
      let alice = connect w "alice" ~group:"g" in
      ok (Client.disconnect alice))

let test_disconnected_session_rejects_ops () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.disconnect alice);
      (match Client.read alice ~item:"x" with
      | Error Client.Disconnected -> ()
      | _ -> Alcotest.fail "expected Disconnected");
      match Client.write alice ~item:"x" "v" with
      | Error Client.Disconnected -> ()
      | _ -> Alcotest.fail "expected Disconnected")

let test_context_reconstruction () =
  let w = make_world () in
  (* Session crashes without disconnect: context write-back never runs. *)
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v1");
      ok (Client.write alice ~item:"y" "w1"));
  flood w;
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" ~recover:`Reconstruct in
      let ctx = Client.context alice in
      Alcotest.(check int) "both items recovered" 2 (Context.cardinal ctx);
      Alcotest.(check string) "reads fresh" "v1" (ok (Client.read alice ~item:"x"));
      (* Timestamps must continue above recovered ones. *)
      ok (Client.write alice ~item:"x" "v2");
      Alcotest.(check string) "new write wins" "v2" (ok (Client.read alice ~item:"x")))

(* ------------------------------------------------------------------ *)
(* Causal consistency                                                 *)
(* ------------------------------------------------------------------ *)

let cc cfg = { cfg with Client.consistency = Client.CC }

let test_cc_pulls_dependencies () =
  let w = make_world () in
  (* x1=v1 known everywhere; then x1=v2 and a dependent write x2=w2 land
     only on servers 0,1. A reader that sees w2 via gossip on server 2
     must then refuse x1=v1. *)
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" ~cfg:cc in
      ok (Client.write alice ~item:"x1" "v1"));
  flood w;
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" ~cfg:cc ~recover:`Reconstruct in
      ok (Client.write alice ~item:"x1" "v2");
      let bob = connect w "bob" ~group:"g" ~cfg:cc in
      Alcotest.(check string) "bob reads v2" "v2" (ok (Client.read bob ~item:"x1"));
      ok (Client.write bob ~item:"x2" "based-on-v2"));
  (* Push only bob's x2 write to server 2 (guard off: accepted). *)
  let x2 = Uid.make ~group:"g" ~item:"x2" in
  let x2_write =
    match Server.current_write w.servers.(0) x2 with
    | Some wr -> wr
    | None -> Alcotest.fail "x2 missing at server 0"
  in
  ignore
    (Server.handle w.servers.(2) ~now:0.0 ~from:0
       { Payload.token = None; epoch = 0; request = Payload.Gossip_push { writes = [ x2_write ]; have = []; epoch = None } });
  in_world w (fun () ->
      let carol =
        connect w "carol" ~group:"g"
          ~cfg:(fun c -> { (cc c) with Client.servers = [ 2; 3; 0; 1 ] })
      in
      Alcotest.(check string) "carol reads x2 from server 2" "based-on-v2"
        (ok (Client.read carol ~item:"x2"));
      (* CC: carol's context now requires x1 >= v2's stamp; servers 2,3
         only have v1, so the read must expand and return v2. *)
      Alcotest.(check string) "cc forbids causally overwritten v1" "v2"
        (ok (Client.read carol ~item:"x1")))

let test_mrc_does_not_pull_dependencies () =
  (* Identical setup but MRC: carol may legitimately read the stale v1. *)
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x1" "v1"));
  flood w;
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" ~recover:`Reconstruct in
      ok (Client.write alice ~item:"x1" "v2");
      let bob = connect w "bob" ~group:"g" in
      Alcotest.(check string) "bob reads v2" "v2" (ok (Client.read bob ~item:"x1"));
      ok (Client.write bob ~item:"x2" "based-on-v2"));
  let x2 = Uid.make ~group:"g" ~item:"x2" in
  let x2_write = Option.get (Server.current_write w.servers.(0) x2) in
  ignore
    (Server.handle w.servers.(2) ~now:0.0 ~from:0
       { Payload.token = None; epoch = 0; request = Payload.Gossip_push { writes = [ x2_write ]; have = []; epoch = None } });
  in_world w (fun () ->
      let carol =
        connect w "carol" ~group:"g"
          ~cfg:(fun c -> { c with Client.servers = [ 2; 3; 0; 1 ] })
      in
      Alcotest.(check string) "carol reads x2" "based-on-v2"
        (ok (Client.read carol ~item:"x2"));
      Alcotest.(check string) "mrc happily returns v1" "v1"
        (ok (Client.read carol ~item:"x1")))

(* ------------------------------------------------------------------ *)
(* Byzantine servers                                                  *)
(* ------------------------------------------------------------------ *)

let test_corrupt_value_detected () =
  let w = make_world () in
  wrap w 0 Faults.Corrupt_value;
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "precious");
      (* Server 0 is polled first and serves garbage; the signature check
         fails and the read falls through to server 1. *)
      Alcotest.(check string) "survives corruption" "precious"
        (ok (Client.read alice ~item:"x")))

let test_equivocating_meta_rejected () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v1"));
  flood w;
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" ~recover:`Reconstruct in
      ok (Client.write alice ~item:"x" "v2"));
  (* Server 0 now claims an enormous timestamp but can only serve what it
     has. Readers with a fresh context must not regress. *)
  wrap w 0 Faults.Equivocate;
  in_world w (fun () ->
      let bob = connect w "bob" ~group:"g" in
      Alcotest.(check string) "reads true latest" "v2" (ok (Client.read bob ~item:"x")))

let test_crash_and_silent_servers () =
  let w = make_world ~n:4 ~b:1 () in
  wrap w 3 Faults.Crash;
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v1");
      Alcotest.(check string) "one crash tolerated" "v1"
        (ok (Client.read alice ~item:"x"));
      ok (Client.disconnect alice));
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      Alcotest.(check string) "context survives crash" "v1"
        (ok (Client.read alice ~item:"x")))

let test_stale_server_context () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v1");
      ok (Client.disconnect alice));
  wrap w 0 Faults.Stale;
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v2");
      ok (Client.disconnect alice));
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      (* Server 0 returns the seq-1 context; the client picks the latest
         validly-signed one (seq 2) and so must read v2. *)
      Alcotest.(check string) "latest context wins" "v2"
        (ok (Client.read alice ~item:"x")))

let test_forged_write_rejected_by_servers () =
  let w = make_world () in
  let uid = Uid.make ~group:"g" ~item:"x" in
  let forged = Faults.forge_write ~keyring:w.keyring ~uid ~value:"evil" ~writer:"alice" in
  (match
     Server.handle w.servers.(0) ~now:0.0 ~from:9
       { Payload.token = None; epoch = 0; request = Payload.Gossip_push { writes = [ forged ]; have = []; epoch = None } }
   with
  | Some Payload.Ack -> ()
  | _ -> Alcotest.fail "gossip should be acked");
  Alcotest.(check bool) "forgery not stored" true
    (Server.current_write w.servers.(0) uid = None)

let test_unknown_writer_rejected () =
  let w = make_world () in
  in_world w (fun () ->
      let eve_key = Crypto.Rsa.generate ~bits:512 (Crypto.Prng.create ~seed:"eve") in
      let config = Client.default_config ~n:w.n ~b:w.b in
      match
        Client.connect ~config ~uid:"eve" ~key:eve_key ~keyring:w.keyring ~group:"g" ()
      with
      | Error _ -> ()
      | Ok eve -> (
        match Client.write eve ~item:"x" "sneaky" with
        | Error Client.Write_rejected -> ()
        | Error e -> Alcotest.failf "expected rejection, got %s" (Client.error_to_string e)
        | Ok () -> Alcotest.fail "unregistered writer accepted"))

(* ------------------------------------------------------------------ *)
(* Multi-writer protocol (section 5.3)                                *)
(* ------------------------------------------------------------------ *)

let mw cfg = { cfg with Client.mode = Client.Multi_writer }
let mw_guarded_world ?(n = 4) ?(b = 1) () =
  let config =
    { (Server.default_config ~n ~b) with Server.malicious_client_guard = true }
  in
  make_world ~n ~b ~server_config:config ()

let test_multi_writer_two_clients () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"plan" ~cfg:mw in
      let bob = connect w "bob" ~group:"plan" ~cfg:mw in
      ok (Client.write alice ~item:"doc" "alice-draft");
      ok (Client.write bob ~item:"doc" "bob-draft");
      (* Both observers converge on the same winner. *)
      let carol = connect w "carol" ~group:"plan" ~cfg:mw in
      let v1 = ok (Client.read carol ~item:"doc") in
      let mallory = connect w "mallory" ~group:"plan" ~cfg:mw in
      let v2 = ok (Client.read mallory ~item:"doc") in
      Alcotest.(check string) "agreement" v1 v2;
      Alcotest.(check string) "later timestamp wins" "bob-draft" v1)

let test_multi_writer_monotonic_per_reader () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"plan" ~cfg:mw in
      let carol = connect w "carol" ~group:"plan" ~cfg:mw in
      ok (Client.write alice ~item:"doc" "v1");
      let first = ok (Client.read carol ~item:"doc") in
      Alcotest.(check string) "first" "v1" first;
      let bob = connect w "bob" ~group:"plan" ~cfg:mw in
      ok (Client.write bob ~item:"doc" "v2");
      let second = ok (Client.read carol ~item:"doc") in
      Alcotest.(check string) "no regression" "v2" second)

let test_fork_detection () =
  let w = make_world () in
  (* Mallory signs two different values under one timestamp and sends one
     to some servers, the other to the rest. *)
  let uid = Uid.make ~group:"plan" ~item:"doc" in
  let stamp1 = Stamp.multi ~time:77 ~writer:"mallory" ~value:"one" in
  let stamp2 = Stamp.multi ~time:77 ~writer:"mallory" ~value:"two" in
  let mk stamp value =
    Signing.sign_write ~key:(key_of "mallory") ~writer:"mallory" ~uid ~stamp value
  in
  let w1 = mk stamp1 "one" and w2 = mk stamp2 "two" in
  let push i write =
    ignore
      (Server.handle w.servers.(i) ~now:0.0 ~from:(-1)
         { Payload.token = None; epoch = 0; request = Payload.Write_req { write; await_ack = true } })
  in
  Array.iteri (fun i _ -> push i w1) w.servers;
  Array.iteri (fun i _ -> push i w2) w.servers;
  Alcotest.(check bool) "servers flag mallory" true
    (Array.for_all (fun s -> Server.is_writer_faulty s "mallory") w.servers);
  in_world w (fun () ->
      let carol = connect w "carol" ~group:"plan" ~cfg:mw in
      match expect_error (Client.read carol ~item:"doc") with
      | Client.Writer_faulty _ -> ()
      | e -> Alcotest.failf "expected Writer_faulty, got %s" (Client.error_to_string e))

let test_malicious_context_held () =
  let w = mw_guarded_world () in
  let uid = Uid.make ~group:"plan" ~item:"doc" in
  (* Mallory's write names a causal predecessor that does not exist
     anywhere (spurious huge timestamp on item "dep"). *)
  let dep = Uid.make ~group:"plan" ~item:"dep" in
  let bogus_ctx =
    Context.of_bindings
      [ (dep, Stamp.multi ~time:999999999 ~writer:"mallory" ~value:"?") ]
  in
  let stamp = Stamp.multi ~time:10 ~writer:"mallory" ~value:"poison" in
  let poisoned =
    Signing.sign_write ~key:(key_of "mallory") ~writer:"mallory" ~uid ~stamp
      ~wctx:bogus_ctx "poison"
  in
  Array.iter
    (fun s ->
      ignore
        (Server.handle s ~now:0.0 ~from:(-1)
           {
             Payload.token = None; epoch = 0;
             request = Payload.Write_req { write = poisoned; await_ack = true };
           }))
    w.servers;
  Alcotest.(check bool) "held, not announced" true
    (Array.for_all
       (fun s -> Server.current_write s uid = None && Server.pending_count s uid = 1)
       w.servers);
  (* Readers never see the poisoned write, and their contexts are not
     polluted by its spurious timestamps. *)
  in_world w (fun () ->
      let carol =
        connect w "carol" ~group:"plan" ~cfg:(fun c -> { (mw c) with Client.read_retries = 0 })
      in
      (match Client.read carol ~item:"doc" with
      | Error (Client.Not_found _) -> ()
      | Error e -> Alcotest.failf "unexpected error %s" (Client.error_to_string e)
      | Ok v -> Alcotest.failf "poisoned value visible: %s" v);
      Alcotest.(check bool) "context clean" true
        (Stamp.equal (Context.find (Client.context carol) dep) Stamp.zero))

let test_guard_releases_when_deps_arrive () =
  let w = mw_guarded_world () in
  in_world w (fun () ->
      let alice =
        connect w "alice" ~group:"plan" ~cfg:(fun c -> cc (mw c))
      in
      ok (Client.write alice ~item:"dep" "base");
      (* CC write of doc depends on dep, which every server has: it must
         be announced immediately. *)
      ok (Client.write alice ~item:"doc" "final");
      let bob = connect w "bob" ~group:"plan" ~cfg:(fun c -> cc (mw c)) in
      Alcotest.(check string) "visible" "final" (ok (Client.read bob ~item:"doc")))

let test_guard_holds_out_of_order_gossip () =
  let w = mw_guarded_world () in
  let dep = Uid.make ~group:"plan" ~item:"dep" in
  let doc = Uid.make ~group:"plan" ~item:"doc" in
  let dep_stamp = Stamp.multi ~time:5 ~writer:"alice" ~value:"base" in
  let dep_write =
    Signing.sign_write ~key:(key_of "alice") ~writer:"alice" ~uid:dep
      ~stamp:dep_stamp "base"
  in
  let doc_ctx = Context.of_bindings [ (dep, dep_stamp) ] in
  let doc_write =
    Signing.sign_write ~key:(key_of "alice") ~writer:"alice" ~uid:doc
      ~stamp:(Stamp.multi ~time:6 ~writer:"alice" ~value:"final")
      ~wctx:doc_ctx "final"
  in
  let push i write =
    ignore
      (Server.handle w.servers.(i) ~now:0.0 ~from:(-1)
         { Payload.token = None; epoch = 0; request = Payload.Write_req { write; await_ack = true } })
  in
  (* doc arrives before dep: held. *)
  push 0 doc_write;
  Alcotest.(check int) "held" 1 (Server.pending_count w.servers.(0) doc);
  Alcotest.(check bool) "not announced" true
    (Server.current_write w.servers.(0) doc = None);
  (* dep arrives: doc is released. *)
  push 0 dep_write;
  Alcotest.(check int) "drained" 0 (Server.pending_count w.servers.(0) doc);
  Alcotest.(check bool) "announced now" true
    (Server.current_write w.servers.(0) doc <> None)

let test_eager_report_masked_by_vouching () =
  let w = mw_guarded_world () in
  wrap w 0 Faults.Eager_report;
  let doc = Uid.make ~group:"plan" ~item:"doc" in
  let dep = Uid.make ~group:"plan" ~item:"dep" in
  let bogus_ctx =
    Context.of_bindings [ (dep, Stamp.multi ~time:424242 ~writer:"mallory" ~value:"?") ]
  in
  let poisoned =
    Signing.sign_write ~key:(key_of "mallory") ~writer:"mallory" ~uid:doc
      ~stamp:(Stamp.multi ~time:9 ~writer:"mallory" ~value:"poison")
      ~wctx:bogus_ctx "poison"
  in
  Array.iter
    (fun s ->
      ignore
        (Server.handle s ~now:0.0 ~from:(-1)
           {
             Payload.token = None; epoch = 0;
             request = Payload.Write_req { write = poisoned; await_ack = true };
           }))
    w.servers;
  in_world w (fun () ->
      let carol =
        connect w "carol" ~group:"plan"
          ~cfg:(fun c -> { (mw c) with Client.read_retries = 0 })
      in
      (* Only the eager server vouches for the held write: b+1 = 2
         matching servers are required, so it is not accepted. *)
      match Client.read carol ~item:"doc" with
      | Error (Client.Not_found _) -> ()
      | Error e -> Alcotest.failf "unexpected error %s" (Client.error_to_string e)
      | Ok v -> Alcotest.failf "eager report leaked: %s" v)

let test_log_keeps_overwritten_value () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"plan" ~cfg:mw in
      ok (Client.write alice ~item:"doc" "v1");
      ok (Client.write alice ~item:"doc" "v2"));
  let doc = Uid.make ~group:"plan" ~item:"doc" in
  let log = Server.log_writes w.servers.(0) doc in
  Alcotest.(check int) "current + overwritten" 2 (List.length log);
  Alcotest.(check string) "newest first" "v2" (List.hd log).Payload.value

(* ------------------------------------------------------------------ *)
(* Inline (one-round) reads                                           *)
(* ------------------------------------------------------------------ *)

let inline cfg = { cfg with Client.inline_read = true; paper_cost_model = true }

let test_inline_read_roundtrip () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" ~cfg:inline in
      ok (Client.write alice ~item:"x" "vv");
      Alcotest.(check string) "inline read" "vv" (ok (Client.read alice ~item:"x")))

let test_inline_read_one_round_cost () =
  List.iter
    (fun (n, b) ->
      let w = make_world ~n ~b () in
      in_world w (fun () ->
          let alice = connect w "alice" ~group:"g" ~cfg:inline in
          ok (Client.write alice ~item:"x" "v");
          Metrics.reset ();
          ok (Result.map ignore (Client.read alice ~item:"x"));
          let m = Metrics.read () in
          (* One round: b+1 requests + b+1 full-write replies. *)
          Alcotest.(check int)
            (Printf.sprintf "inline read msgs (n=%d b=%d)" n b)
            (2 * (b + 1))
            m.Metrics.messages;
          Alcotest.(check int) "one verification" 1 m.Metrics.verifies))
    [ (4, 1); (7, 2); (10, 3) ]

let test_inline_read_falls_back () =
  (* Preferred servers are stale: the inline round misses, the standard
     expansion path still finds the fresh value. *)
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v1");
      ok (Client.disconnect alice));
  flood w;
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v2");
      ok (Client.disconnect alice));
  in_world w (fun () ->
      let alice =
        connect w "alice" ~group:"g"
          ~cfg:(fun c -> { (inline c) with Client.servers = [ 2; 3; 0; 1 ] })
      in
      Alcotest.(check string) "fallback finds fresh" "v2"
        (ok (Client.read alice ~item:"x")))

let test_inline_read_survives_corruption () =
  let w = make_world () in
  wrap w 0 Faults.Corrupt_value;
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" ~cfg:inline in
      ok (Client.write alice ~item:"x" "precious");
      Alcotest.(check string) "corrupt inline reply skipped" "precious"
        (ok (Client.read alice ~item:"x")))

(* ------------------------------------------------------------------ *)
(* Timestamp jitter (update-count privacy, section 5.2)               *)
(* ------------------------------------------------------------------ *)

let test_timestamp_jitter () =
  let w = make_world () in
  let uid = Uid.make ~group:"g" ~item:"x" in
  in_world w (fun () ->
      let alice =
        connect w "alice" ~group:"g"
          ~cfg:(fun c -> { c with Client.timestamp_jitter = 1000 })
      in
      for i = 1 to 5 do
        ok (Client.write alice ~item:"x" (string_of_int i))
      done;
      Alcotest.(check string) "still reads latest" "5" (ok (Client.read alice ~item:"x")));
  (* With jitter, the final timestamp must exceed the write count by far,
     so a server cannot infer how many updates happened. *)
  match Server.current_write w.servers.(0) uid with
  | Some writes ->
    Alcotest.(check bool) "timestamp >> update count" true
      (Stamp.time writes.Payload.stamp > 50)
  | None -> Alcotest.fail "missing write"

let test_jitter_monotonic =
  QCheck.Test.make ~name:"jittered stamps stay strictly increasing" ~count:50
    QCheck.small_nat
    (fun seed ->
      let w = make_world () in
      in_world w (fun () ->
          let alice =
            connect w "alice" ~group:"g"
              ~cfg:(fun c -> { c with Client.timestamp_jitter = 17; seed })
          in
          let uid = Uid.make ~group:"g" ~item:"x" in
          let stamps = ref [] in
          for i = 1 to 10 do
            ok (Client.write alice ~item:"x" (string_of_int i));
            stamps := Context.find (Client.context alice) uid :: !stamps
          done;
          let rec strictly_increasing = function
            | a :: (b :: _ as rest) ->
              Stamp.compare b a < 0 && strictly_increasing rest
            | _ -> true
          in
          (* stamps list is newest-first *)
          strictly_increasing !stamps))

(* ------------------------------------------------------------------ *)
(* Log erasure (section 5.3: drop once newer value is at 2b+1)        *)
(* ------------------------------------------------------------------ *)

let test_log_erasure_via_gossip () =
  let w = make_world ~n:4 ~b:1 () in
  let uid = Uid.make ~group:"g" ~item:"x" in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v1");
      ok (Client.write alice ~item:"x" "v2"));
  (* Before dissemination: v1 still retained in the log at server 0. *)
  Alcotest.(check int) "log keeps v1" 2 (List.length (Server.log_writes w.servers.(0) uid));
  flood w;
  (* After full dissemination every server knows >= 2b+1 = 3 servers hold
     v2, so v1 is erased from logs. *)
  Alcotest.(check bool) "holder evidence collected" true
    (Array.exists
       (fun s ->
         match Server.current_write s uid with
         | Some w' -> Server.holder_count s uid w'.Payload.stamp >= 3
         | None -> false)
       w.servers);
  Alcotest.(check bool) "old value erased somewhere" true
    (Array.exists (fun s -> List.length (Server.log_writes s uid) = 1) w.servers)

let test_erased_write_not_readmitted () =
  let w = make_world ~n:4 ~b:1 () in
  let uid = Uid.make ~group:"g" ~item:"x" in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v1");
      ok (Client.write alice ~item:"x" "v2"));
  let v1_write =
    match Server.log_writes w.servers.(0) uid with
    | [ _; v1 ] -> v1
    | _ -> Alcotest.fail "expected two log entries"
  in
  flood w;
  (* Find a server that erased v1 and replay v1 at it: the watermark must
     reject the stale resurrection. *)
  let victim =
    match
      Array.find_opt (fun s -> List.length (Server.log_writes s uid) = 1) w.servers
    with
    | Some s -> s
    | None -> Alcotest.fail "no server erased v1"
  in
  ignore
    (Server.handle victim ~now:0.0 ~from:9
       {
         Payload.token = None; epoch = 0;
         request = Payload.Gossip_push { writes = [ v1_write ]; have = []; epoch = None };
       });
  Alcotest.(check int) "replayed v1 stays out" 1
    (List.length (Server.log_writes victim uid))

(* ------------------------------------------------------------------ *)
(* Authorization end to end                                           *)
(* ------------------------------------------------------------------ *)

let test_auth_enforced () =
  let svc = Access_control.create_service ~secret:"store-secret" in
  let n = 4 and b = 1 in
  let config = { (Server.default_config ~n ~b) with Server.auth = Some svc } in
  let w = make_world ~n ~b ~server_config:config () in
  let token rights =
    Access_control.issue svc ~client:"alice" ~group:"g" ~rights ~expires:1e9
  in
  in_world w (fun () ->
      (* No token: context read returns Denied everywhere -> no quorum of
         usable replies, but connect still succeeds with an empty context
         only if Denied counts as a reply... it must NOT grant access. *)
      let alice =
        connect w "alice" ~group:"g"
          ~cfg:(fun c -> { c with Client.token = Some (token Access_control.Read_write) })
      in
      ok (Client.write alice ~item:"x" "v1");
      Alcotest.(check string) "authorized client works" "v1"
        (ok (Client.read alice ~item:"x"));
      ok (Client.disconnect alice));
  in_world w (fun () ->
      let reader =
        connect w "bob" ~group:"g"
          ~cfg:(fun c ->
            let t =
              Access_control.issue svc ~client:"bob" ~group:"g"
                ~rights:Access_control.Read_only ~expires:1e9
            in
            { c with Client.token = Some t })
      in
      Alcotest.(check string) "read-only can read" "v1" (ok (Client.read reader ~item:"x"));
      match Client.write reader ~item:"x" "vandalism" with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "read-only token allowed a write");
  in_world w (fun () ->
      let intruder =
        connect w "carol" ~group:"g" ~cfg:(fun c -> { c with Client.read_retries = 0 })
      in
      match Client.read intruder ~item:"x" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unauthenticated read succeeded")

(* ------------------------------------------------------------------ *)
(* Dynamic quorums via fault evidence                                 *)
(* ------------------------------------------------------------------ *)

let test_evidence_unit () =
  let e = Fault_evidence.create ~servers:[ 0; 1; 2; 3 ] ~b:1 in
  Alcotest.(check int) "initial b" 1 (Fault_evidence.effective_b e);
  Fault_evidence.report_suspicion e ~server:2;
  Alcotest.(check (list int)) "suspected demoted" [ 0; 1; 3; 2 ]
    (Fault_evidence.preferred_servers e);
  Fault_evidence.clear_suspicion e ~server:2;
  Alcotest.(check (list int)) "cleared" [ 0; 1; 2; 3 ] (Fault_evidence.preferred_servers e);
  Fault_evidence.report_proof e ~server:0 Fault_evidence.Invalid_signature;
  Fault_evidence.report_proof e ~server:0 Fault_evidence.Stamp_regression (* idempotent *);
  Alcotest.(check int) "b drops" 0 (Fault_evidence.effective_b e);
  Alcotest.(check (list int)) "proven excluded" [ 1; 2; 3 ]
    (Fault_evidence.preferred_servers e);
  Alcotest.(check bool) "proof kind kept" true
    (Fault_evidence.proof_of e 0 = Some Fault_evidence.Invalid_signature);
  Alcotest.(check (list int)) "proven list" [ 0 ] (Fault_evidence.proven e)

let test_evidence_proves_corrupt_server () =
  let w = make_world ~n:4 ~b:1 () in
  wrap w 0 Faults.Corrupt_value;
  let evidence = Fault_evidence.create ~servers:(List.init 4 Fun.id) ~b:1 in
  in_world w (fun () ->
      let alice =
        connect w "alice" ~group:"g"
          ~cfg:(fun c -> { c with Client.evidence = Some evidence })
      in
      ok (Client.write alice ~item:"x" "v1");
      (* The read encounters the corrupted reply, proves server 0 faulty,
         and still succeeds via an honest server. *)
      Alcotest.(check string) "read ok" "v1" (ok (Client.read alice ~item:"x"));
      Alcotest.(check bool) "server 0 proven" true (Fault_evidence.is_proven evidence 0);
      Alcotest.(check int) "effective b now 0" 0 (Fault_evidence.effective_b evidence);
      (* Subsequent reads shrink: only b_eff+1 = 1 server polled, and it
         is never the proven-faulty one. *)
      Metrics.reset ();
      Alcotest.(check string) "shrunk read" "v1" (ok (Client.read alice ~item:"x"));
      let m = Metrics.read () in
      Alcotest.(check int) "one-server read round" (2 + 2) m.Metrics.messages)

let test_evidence_shrinks_context_quorum () =
  let w = make_world ~n:4 ~b:1 () in
  let evidence = Fault_evidence.create ~servers:(List.init 4 Fun.id) ~b:1 in
  Fault_evidence.report_proof evidence ~server:3 Fault_evidence.Forged_context;
  in_world w (fun () ->
      let alice =
        connect w "alice" ~group:"g"
          ~cfg:(fun c -> { c with Client.evidence = Some evidence })
      in
      ok (Client.write alice ~item:"x" "v1");
      Metrics.reset ();
      ok (Client.disconnect alice);
      let m = Metrics.read () in
      (* q drops from ceil((4+1+1)/2)=3 to ceil((4+0+1)/2)=3... for n=4
         the rounding hides it; what must hold is that the proven server
         was never contacted and the session still works. *)
      Alcotest.(check bool) "quorum reachable without proven server" true
        (m.Metrics.messages <= 2 * 3));
  (* Larger n shows the shrink: q 7 -> 6 for n=10, b 3 -> 2. *)
  let w = make_world ~n:10 ~b:3 () in
  let evidence = Fault_evidence.create ~servers:(List.init 10 Fun.id) ~b:3 in
  Fault_evidence.report_proof evidence ~server:9 Fault_evidence.Forged_context;
  in_world w (fun () ->
      let alice =
        connect w "alice" ~group:"g"
          ~cfg:(fun c -> { c with Client.evidence = Some evidence })
      in
      ok (Client.write alice ~item:"x" "v1");
      Metrics.reset ();
      ok (Client.disconnect alice);
      Alcotest.(check int) "ctx quorum shrinks to 2*ceil((10+2+1)/2)=14"
        (2 * 7)
        (Metrics.read ()).Metrics.messages)

let test_evidence_never_goes_negative () =
  let e = Fault_evidence.create ~servers:[ 0; 1; 2; 3 ] ~b:1 in
  Fault_evidence.report_proof e ~server:0 Fault_evidence.Invalid_signature;
  Fault_evidence.report_proof e ~server:1 Fault_evidence.Invalid_signature;
  Alcotest.(check int) "clamped at 0" 0 (Fault_evidence.effective_b e)

(* ------------------------------------------------------------------ *)
(* Dispersal (fragmentation-scattering)                               *)
(* ------------------------------------------------------------------ *)

let make_dispersal ?k w name =
  Dispersal.make ~n:w.n ~b:w.b ?k ~writer:name ~key:(key_of name)
    ~keyring:w.keyring ~group:"vault" ~secret:"vault-master-key" ()

let dok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "dispersal error: %s" (Dispersal.error_to_string e)

let test_dispersal_roundtrip () =
  let w = make_world ~n:4 ~b:1 () in
  let value = String.init 5000 (fun i -> Char.chr (i mod 251)) in
  in_world w (fun () ->
      let d = make_dispersal w "alice" in
      dok (Dispersal.write d ~item:"estate" value);
      Alcotest.(check string) "roundtrip" value (dok (Dispersal.read d ~item:"estate"));
      (* Overwrites return the newest version. *)
      dok (Dispersal.write d ~item:"estate" "v2");
      Alcotest.(check string) "overwrite" "v2" (dok (Dispersal.read d ~item:"estate")));
  (* Each server stores roughly |ct|/k, not the whole value. *)
  let frag_uid = Uid.make ~group:"vault" ~item:(Dispersal.fragment_item ~item:"estate" 1) in
  match Server.log_writes w.servers.(0) frag_uid with
  | w1 :: _ ->
    Alcotest.(check bool) "fragment much smaller than value" true
      (String.length w1.Payload.value < 3000)
  | [] -> Alcotest.fail "fragment missing at server 0"

let test_dispersal_confidentiality () =
  let w = make_world ~n:4 ~b:1 () in
  in_world w (fun () ->
      let d = make_dispersal w "alice" in
      dok (Dispersal.write d ~item:"will" "leave everything to the cat"));
  (* No server's stored bytes contain the plaintext. *)
  Array.iteri
    (fun i server ->
      let uid =
        Uid.make ~group:"vault" ~item:(Dispersal.fragment_item ~item:"will" (i + 1))
      in
      match Server.current_write server uid with
      | Some stored ->
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "server %d sees no plaintext" i)
          false
          (contains stored.Payload.value "everything")
      | None -> Alcotest.failf "server %d missing its fragment" i)
    w.servers;
  (* A reader with the wrong vault secret cannot decrypt. *)
  in_world w (fun () ->
      let snoop =
        Dispersal.make ~n:w.n ~b:w.b ~writer:"alice" ~key:(key_of "alice")
          ~keyring:w.keyring ~group:"vault" ~secret:"wrong-secret" ()
      in
      match Dispersal.read snoop ~item:"will" with
      | Error Dispersal.Decrypt_failed -> ()
      | Error e -> Alcotest.failf "unexpected: %s" (Dispersal.error_to_string e)
      | Ok v -> Alcotest.failf "wrong key decrypted: %s" v)

let test_dispersal_crash_tolerance () =
  let w = make_world ~n:4 ~b:1 () in
  in_world w (fun () ->
      let d = make_dispersal w "alice" in
      dok (Dispersal.write d ~item:"x" "fragile data"));
  wrap w 3 Faults.Crash;
  in_world w (fun () ->
      let d = make_dispersal w "alice" in
      Alcotest.(check string) "read with crash" "fragile data"
        (dok (Dispersal.read d ~item:"x")))

let test_dispersal_corrupt_fragment_rejected () =
  let w = make_world ~n:4 ~b:1 () in
  in_world w (fun () ->
      let d = make_dispersal w "alice" in
      dok (Dispersal.write d ~item:"x" "precious dispersed"));
  wrap w 0 Faults.Corrupt_value;
  in_world w (fun () ->
      let d = make_dispersal w "alice" in
      (* The corrupted fragment fails its signature check; k good ones
         remain among the other 3 servers. *)
      Alcotest.(check string) "survives fragment corruption" "precious dispersed"
        (dok (Dispersal.read d ~item:"x")))

let test_dispersal_not_found_and_bounds () =
  let w = make_world ~n:4 ~b:1 () in
  in_world w (fun () ->
      let d = make_dispersal w "alice" in
      (match Dispersal.read d ~item:"ghost" with
      | Error Dispersal.Not_found -> ()
      | Error e -> Alcotest.failf "unexpected: %s" (Dispersal.error_to_string e)
      | Ok _ -> Alcotest.fail "ghost item read"));
  Alcotest.check_raises "k too large"
    (Invalid_argument "Dispersal.make: need b+1 <= k <= n-2b") (fun () ->
      ignore (make_dispersal ~k:3 w "alice"))

(* ------------------------------------------------------------------ *)
(* Coded bulk transport (the live dispersal path in Client)           *)
(* ------------------------------------------------------------------ *)

(* A tiny threshold and chunk so modest test values still exercise the
   full streaming machinery: multi-round Frag_put scatter and ranged
   Frag_get gather. *)
let coded_cfg c =
  { c with Client.dispersal_threshold = 256; dispersal_chunk = 1024 }

let big_value n = String.init n (fun i -> Char.chr ((i * 131 + i / 251) land 0xff))

let current_write_exn w i uid =
  match Server.current_write w.servers.(i) uid with
  | Some mw -> mw
  | None -> Alcotest.failf "server %d has no metadata for %s" i (Uid.to_string uid)

let prop_dispersal_plan_decode =
  QCheck.Test.make ~name:"dispersal plan/decode any-k-subset roundtrip" ~count:80
    QCheck.(triple (string_of_size Gen.(0 -- 400)) (int_range 1 5) (int_range 0 4))
    (fun (value, k, extra) ->
      let n = k + extra in
      let stripe = k * 16 in
      let meta, frags = Dispersal.plan ~k ~n ~stripe value in
      let indexed = Array.to_list (Array.mapi (fun i f -> (i + 1, f)) frags) in
      (* the last k fragments suffice, and extras never hurt *)
      let subset = List.filteri (fun i _ -> i >= n - k) indexed in
      Dispersal.meta_ok meta
      && meta.Payload.total_length = String.length value
      && List.for_all2
           (fun d f -> d = Crypto.Sha256.digest f)
           meta.Payload.digests (Array.to_list frags)
      && Dispersal.decode_fragments meta subset = Some value
      && Dispersal.decode_fragments meta indexed = Some value
      && (k = 1 || Dispersal.decode_fragments meta (List.tl subset) = None))

let prop_dispersal_refragment =
  QCheck.Test.make ~name:"dispersal refragment rebuilds any index" ~count:60
    QCheck.(pair (string_of_size Gen.(1 -- 300)) (int_range 1 4))
    (fun (value, k) ->
      let n = k + 2 in
      let meta, frags = Dispersal.plan ~k ~n ~stripe:(k * 32) value in
      Array.for_all
        (fun i -> Dispersal.refragment meta ~index:(i + 1) value = frags.(i))
        (Array.init n Fun.id))

let prop_dispersal_corrupt_fragment_detected =
  QCheck.Test.make ~name:"dispersal digest catches a flipped byte" ~count:60
    QCheck.(pair (string_of_size Gen.(1 -- 200)) (int_range 1 4))
    (fun (value, k) ->
      let n = k + 1 in
      let meta, frags = Dispersal.plan ~k ~n ~stripe:(k * 16) value in
      let f = frags.(0) in
      let bad = Bytes.of_string f in
      Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) lxor 1));
      List.hd meta.Payload.digests <> Crypto.Sha256.digest (Bytes.to_string bad))

let test_coded_write_read_roundtrip () =
  let w = make_world () in
  let value = big_value 10_000 in
  let dw0 = Metrics.dispersed_writes () and dr0 = Metrics.dispersed_reads () in
  in_world w (fun () ->
      let alice = connect ~cfg:coded_cfg w "alice" ~group:"g" in
      ok (Client.write alice ~item:"blob" value);
      Alcotest.(check string) "writer reads back" value
        (ok (Client.read alice ~item:"blob"));
      (* a different client reconstructs too, end to end *)
      let bob = connect ~cfg:coded_cfg w "bob" ~group:"g" in
      Alcotest.(check string) "other client reconstructs" value
        (ok (Client.read bob ~item:"blob")));
  Alcotest.(check bool) "dispersal counters moved" true
    (Metrics.dispersed_writes () > dw0 && Metrics.dispersed_reads () > dr0);
  (* the metadata write lands on the b+1 write set first; gossip carries
     it to the rest, whose staged fragments only then turn verified *)
  flood w;
  let uid = Uid.make ~group:"g" ~item:"blob" in
  let mw = current_write_exn w 0 uid in
  Alcotest.(check int) "metadata value is a digest root" 32
    (String.length mw.Payload.value);
  (match mw.Payload.frags with
  | Some meta ->
    Alcotest.(check int) "k = b+1" 2 meta.Payload.k;
    Alcotest.(check int) "descriptor covers the membership" 4 meta.Payload.m;
    Alcotest.(check int) "descriptor length" (String.length value)
      meta.Payload.total_length;
    Alcotest.(check string) "value field is the digest root"
      (Dispersal.meta_root meta) mw.Payload.value
  | None -> Alcotest.fail "write was not dispersed");
  Array.iter
    (fun s ->
      Alcotest.(check int)
        (Printf.sprintf "server %d holds one verified fragment" (Server.id s))
        1 (Server.fragment_count s))
    w.servers

let test_coded_threshold_gate () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect ~cfg:coded_cfg w "alice" ~group:"g" in
      ok (Client.write alice ~item:"small" (String.make 255 'x'));
      ok (Client.write alice ~item:"large" (String.make 256 'y')));
  let small = current_write_exn w 0 (Uid.make ~group:"g" ~item:"small") in
  Alcotest.(check bool) "below threshold stays replicated" true
    (small.Payload.frags = None && small.Payload.value = String.make 255 'x');
  let large = current_write_exn w 0 (Uid.make ~group:"g" ~item:"large") in
  Alcotest.(check bool) "at threshold goes dispersed" true
    (large.Payload.frags <> None)

let test_coded_storage_savings () =
  let value = big_value 32_768 in
  let stored cfg =
    let w = make_world () in
    in_world w (fun () ->
        let alice = connect ~cfg w "alice" ~group:"g" in
        ok (Client.write alice ~item:"blob" value));
    flood w;
    Array.fold_left (fun acc s -> acc + Server.storage_bytes s) 0 w.servers
  in
  let coded = stored coded_cfg in
  let replicated = stored Fun.id in
  Alcotest.(check bool)
    (Printf.sprintf "coded stores %d vs replicated %d (want >= 1.5x less)"
       coded replicated)
    true
    (coded * 3 <= replicated * 2)

let test_coded_read_survives_faulty_holders () =
  let w = make_world () in
  let value = big_value 5_000 in
  in_world w (fun () ->
      let alice = connect ~cfg:coded_cfg w "alice" ~group:"g" in
      ok (Client.write alice ~item:"blob" value);
      flood w;
      (* b = 1 holder flips bits in every reply: its fragment fails the
         descriptor digest, the reader strikes it and tops up *)
      wrap w 1 Faults.Corrupt_value;
      let bob = connect ~cfg:coded_cfg w "bob" ~group:"g" in
      Alcotest.(check string) "reconstructs past a corrupting holder" value
        (ok (Client.read bob ~item:"blob"));
      (* a crashed holder on top of that still leaves k = 2 honest ones,
         but exceeds what the b = 1 write quorum promises; drop the
         corrupter back to honest first to stay in the threat model *)
      wrap w 1 Faults.Honest;
      wrap w 2 Faults.Crash;
      let carol = connect ~cfg:coded_cfg w "carol" ~group:"g" in
      Alcotest.(check string) "reconstructs past a crashed holder" value
        (ok (Client.read carol ~item:"blob")))

let test_coded_not_enough_fragments () =
  let w = make_world () in
  let value = big_value 4_000 in
  let uid = Uid.make ~group:"g" ~item:"blob" in
  in_world w (fun () ->
      let alice = connect ~cfg:coded_cfg w "alice" ~group:"g" in
      ok (Client.write alice ~item:"blob" value);
      flood w;
      let stamp = (current_write_exn w 0 uid).Payload.stamp in
      (* losing b holders' fragments is survivable *)
      Server.drop_fragment w.servers.(3) uid ~stamp ~index:4;
      Alcotest.(check string) "survives b fragment losses" value
        (ok (Client.read alice ~item:"blob"));
      (* past b+1 losses only one fragment remains: k = 2 is unreachable,
         and the reader says so rather than serving garbage *)
      Server.drop_fragment w.servers.(2) uid ~stamp ~index:3;
      Server.drop_fragment w.servers.(1) uid ~stamp ~index:2;
      match expect_error (Client.read alice ~item:"blob") with
      | Client.Not_enough_fragments { needed; got; _ } ->
        Alcotest.(check int) "needed" 2 needed;
        Alcotest.(check int) "got" 1 got
      | e -> Alcotest.failf "unexpected: %s" (Client.error_to_string e))

let test_coded_orphans_stay_invisible () =
  let w = make_world () in
  let value = big_value 2_000 in
  let uid = Uid.make ~group:"g" ~item:"orphan" in
  let meta, fragments = Dispersal.plan ~k:2 ~n:4 value in
  let root = Dispersal.meta_root meta in
  let stamp = Stamp.multi ~time:1 ~writer:"alice" ~value:root in
  (* scatter fragments with NO metadata write: the crashed-writer case *)
  Array.iteri
    (fun i data ->
      let request =
        Payload.Frag_put
          { uid; stamp; writer = "alice"; index = i + 1; seq = 0; last = true; data }
      in
      match
        Server.handle w.servers.(i) ~now:0.0 ~from:(-1)
          { Payload.token = None; epoch = 0; request }
      with
      | Some Payload.Ack -> ()
      | _ -> Alcotest.failf "fragment %d not acknowledged" (i + 1))
    fragments;
  Array.iter
    (fun s ->
      Alcotest.(check int) "no verified fragment" 0 (Server.fragment_count s);
      Alcotest.(check int) "one sealed orphan" 1 (Server.orphan_fragment_count s))
    w.servers;
  (* orphans are never served *)
  (match
     Server.handle w.servers.(0) ~now:0.0 ~from:(-1)
       {
         Payload.token = None;
         epoch = 0;
         request = Payload.Frag_get { uid; stamp; index = 1; off = 0; len = 100 };
       }
   with
  | Some (Payload.Frag_reply None) -> ()
  | _ -> Alcotest.fail "orphan fragment was served");
  (* and without the metadata quorum the item simply does not exist:
     the metadata write is the sole commit point *)
  in_world w (fun () ->
      let bob = connect ~cfg:coded_cfg w "bob" ~group:"g" in
      match expect_error (Client.read bob ~item:"orphan") with
      | Client.Not_found _ -> ()
      | e -> Alcotest.failf "unexpected: %s" (Client.error_to_string e))

let test_coded_fragment_repair () =
  let w = make_world () in
  let value = big_value 6_000 in
  let uid = Uid.make ~group:"g" ~item:"blob" in
  in_world w (fun () ->
      let alice = connect ~cfg:coded_cfg w "alice" ~group:"g" in
      ok (Client.write alice ~item:"blob" value));
  flood w;
  let mw = current_write_exn w 0 uid in
  let stamp = mw.Payload.stamp in
  let meta = Option.get mw.Payload.frags in
  (* one holder loses its disk *)
  let dropped = Server.drop_all_fragments w.servers.(2) in
  Alcotest.(check int) "one fragment dropped" 1 dropped;
  Alcotest.(check int) "worklist sees it" 1
    (List.length (Server.missing_fragments w.servers.(2)));
  let repairs0 = Metrics.frag_repairs () in
  Alcotest.(check int) "anti-entropy restores exactly it" 1
    (Gossip.repair_once ~servers:w.servers ());
  Alcotest.(check int) "repair counted in metrics" (repairs0 + 1)
    (Metrics.frag_repairs ());
  Alcotest.(check int) "worklist drained" 0
    (List.length (Server.missing_fragments w.servers.(2)));
  (match Server.fragment w.servers.(2) uid ~stamp ~index:3 with
  | Some f ->
    Alcotest.(check string) "restored bytes match the descriptor"
      (List.nth meta.Payload.digests 2)
      (Crypto.Sha256.digest f)
  | None -> Alcotest.fail "fragment not restored");
  (* the repaired holder carries real weight: kill the two never-dropped
     odd holders and the read must still succeed through it *)
  in_world w (fun () ->
      wrap w 1 Faults.Crash;
      Server.drop_fragment w.servers.(3) uid ~stamp ~index:4;
      let bob = connect ~cfg:coded_cfg w "bob" ~group:"g" in
      Alcotest.(check string) "read through the repaired fragment" value
        (ok (Client.read bob ~item:"blob")))

let test_coded_snapshot_keeps_fragments () =
  let w = make_world () in
  let value = big_value 3_000 in
  let uid = Uid.make ~group:"g" ~item:"blob" in
  in_world w (fun () ->
      let alice = connect ~cfg:coded_cfg w "alice" ~group:"g" in
      ok (Client.write alice ~item:"blob" value));
  flood w;
  let stamp = (current_write_exn w 1 uid).Payload.stamp in
  let original = Option.get (Server.fragment w.servers.(1) uid ~stamp ~index:2) in
  let blob = Server.snapshot w.servers.(1) in
  (match Server.restore ~id:1 ~keyring:w.keyring ~n:w.n ~b:w.b blob with
  | Some restored ->
    Alcotest.(check int) "fragment survives restart" 1
      (Server.fragment_count restored);
    Alcotest.(check (option string)) "same bytes" (Some original)
      (Server.fragment restored uid ~stamp ~index:2);
    (* the restored server serves reads: swap it into the world *)
    w.servers.(1) <- restored;
    w.hmap.(1) <- Server.handler restored
  | None -> Alcotest.fail "restore failed");
  in_world w (fun () ->
      wrap w 0 Faults.Crash;
      Server.drop_fragment w.servers.(3) uid ~stamp ~index:4;
      let bob = connect ~cfg:coded_cfg w "bob" ~group:"g" in
      Alcotest.(check string) "read leans on the restored fragment" value
        (ok (Client.read bob ~item:"blob")))

(* ------------------------------------------------------------------ *)
(* Gossip                                                             *)
(* ------------------------------------------------------------------ *)

let test_gossip_flood_converges () =
  let w = make_world ~n:7 ~b:2 () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v1"));
  let uid = Uid.make ~group:"g" ~item:"x" in
  let have () =
    Array.fold_left
      (fun acc s -> acc + if Server.current_write s uid <> None then 1 else 0)
      0 w.servers
  in
  Alcotest.(check int) "b+1 before" 3 (have ());
  flood w;
  Alcotest.(check int) "all after flood" 7 (have ())

let test_gossip_exchange_progress () =
  let w = make_world ~n:7 ~b:2 () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v1"));
  let rng = Sim.Srng.create 99 in
  let pushed = Gossip.exchange_once ~servers:w.servers ~rng () in
  Alcotest.(check bool) "first round pushes" true (pushed > 0)

(* ------------------------------------------------------------------ *)
(* Confidentiality                                                    *)
(* ------------------------------------------------------------------ *)

let test_confidential_roundtrip () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"med" in
      let sealed = Confidential.make ~client:alice ~key:"family-secret" () in
      ok (Confidential.write sealed ~item:"records" "diagnosis: healthy");
      Alcotest.(check string) "decrypts" "diagnosis: healthy"
        (ok (Confidential.read sealed ~item:"records")));
  (* Servers hold only ciphertext. *)
  let uid = Uid.make ~group:"med" ~item:"records" in
  let stored = Option.get (Server.current_write w.servers.(0) uid) in
  Alcotest.(check bool) "ciphertext at rest" false
    (stored.Payload.value = "diagnosis: healthy");
  Alcotest.(check bool) "plaintext not a substring" true
    (String.length stored.Payload.value > String.length "diagnosis: healthy")

let test_confidential_wrong_key () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"med" in
      let sealed = Confidential.make ~client:alice ~key:"right" () in
      ok (Confidential.write sealed ~item:"r" "secret");
      let bob = connect w "bob" ~group:"med" in
      let snooping = Confidential.make ~client:bob ~key:"wrong" () in
      match Confidential.read_opt snooping ~item:"r" with
      | Ok None -> ()
      | Ok (Some v) -> Alcotest.failf "wrong key decrypted: %s" v
      | Error e -> Alcotest.failf "unexpected error: %s" (Client.error_to_string e))

let test_key_rotation () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"med" in
      let sealed = Confidential.make ~client:alice ~key:"k1" () in
      ok (Confidential.write sealed ~item:"a" "va");
      ok (Confidential.write sealed ~item:"b" "vb");
      ok (Confidential.rotate_key sealed ~new_key:"k2" ~items:[ "a"; "b" ]);
      Alcotest.(check string) "a readable after rotation" "va"
        (ok (Confidential.read sealed ~item:"a"));
      Alcotest.(check string) "b readable after rotation" "vb"
        (ok (Confidential.read sealed ~item:"b"));
      (* Old key no longer decrypts current state. *)
      let old = Confidential.make ~client:alice ~key:"k1" () in
      match Confidential.read_opt old ~item:"a" with
      | Ok None -> ()
      | _ -> Alcotest.fail "old key still decrypts")

(* ------------------------------------------------------------------ *)
(* Audit                                                              *)
(* ------------------------------------------------------------------ *)

let test_audit_proofs () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v1");
      ok (Client.write alice ~item:"x" "v2");
      ok (Client.write alice ~item:"y" "w1"));
  let server = w.servers.(0) in
  let writes = Server.audit_log server in
  Alcotest.(check int) "three announced writes" 3 (List.length writes);
  let target = List.nth writes 1 in
  (match Audit.prove_write server target with
  | None -> Alcotest.fail "no proof"
  | Some (proof, commitment) ->
    Alcotest.(check bool) "proof verifies" true
      (Audit.check_proof commitment target proof);
    let other = List.nth writes 0 in
    Alcotest.(check bool) "proof rejects other write" false
      (Audit.check_proof commitment other proof));
  flood w;
  Alcotest.(check bool) "logs agree after flood" true (Audit.roots_agree w.servers)

let test_audit_detects_divergence () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v1"));
  (* No flood: only b+1 servers saw the write. *)
  Alcotest.(check bool) "divergence visible" false (Audit.roots_agree w.servers)

(* An equivocating writer hands different values under one stamp to
   different servers. Cross-server root comparison exposes the split,
   and inclusion proofs localize it: each server can prove exactly what
   it was given, so the conflicting pair of proofs convicts the writer
   (or the server that fabricated an entry). *)
let test_audit_localizes_equivocation () =
  let w = make_world () in
  let uid = Uid.make ~group:"g" ~item:"x" in
  let stamp = Stamp.scalar 1 in
  let key = key_of "mallory" in
  let wa = Signing.sign_write ~key ~writer:"mallory" ~uid ~stamp "va" in
  let wb = Signing.sign_write ~key ~writer:"mallory" ~uid ~stamp "vb" in
  let deliver i wr =
    match
      Server.handle w.servers.(i) ~now:0.0 ~from:(-9)
        { Payload.token = None; epoch = 0; request = Payload.Write_req { write = wr; await_ack = true } }
    with
    | Some Payload.Ack -> ()
    | _ -> Alcotest.failf "server %d rejected the write" i
  in
  List.iter (fun i -> deliver i wa) [ 0; 1; 3 ];
  deliver 2 wb;
  Alcotest.(check bool) "equivocation splits the roots" false
    (Audit.roots_agree w.servers);
  Alcotest.(check bool) "the honest majority agrees" true
    (Audit.roots_agree [| w.servers.(0); w.servers.(1); w.servers.(3) |]);
  (* Localization: server 2 proves it was given vb; a server that never
     saw vb cannot produce a proof for it. *)
  (match Audit.prove_write w.servers.(2) wb with
  | None -> Alcotest.fail "server 2 cannot prove its own entry"
  | Some (proof, commitment) ->
    Alcotest.(check bool) "divergent entry provable where it lives" true
      (Audit.check_proof commitment wb proof);
    Alcotest.(check bool) "proof does not transfer to the other value" false
      (Audit.check_proof commitment wa proof));
  Alcotest.(check bool) "no proof of vb from an honest server" true
    (Audit.prove_write w.servers.(0) wb = None)

(* A tamperer that advertises a sky-high stamp in meta replies but, when
   the client fetches that stamp, hands over its genuine (stale) freshest
   write.  The signed value is older than the claim, which is exactly the
   stamp-regression misbehaviour the client can prove.  Everything else
   (writes, gossip ingestion) passes through to the real server. *)
let stamp_regression_tamperer server ~now ~from payload =
  match Payload.decode_envelope payload with
  | None -> None
  | Some env ->
    let freshest uid =
      match
        Server.handle server ~now ~from
          { env with Payload.request = Payload.Meta_query { uid } }
      with
      | Some (Payload.Meta_reply { stamp; _ }) -> stamp
      | _ -> None
    in
    let resp =
      match env.Payload.request with
      | Payload.Meta_query _ ->
        (match Server.handle server ~now ~from env with
        | Some (Payload.Meta_reply { stamp = Some _; writer_faulty }) ->
          Some
            (Payload.Meta_reply
               { stamp = Some (Stamp.scalar 1_000_000_000); writer_faulty })
        | r -> r)
      | Payload.Value_read { uid; stamp = _ } ->
        (match freshest uid with
        | Some s ->
          Server.handle server ~now ~from
            { env with Payload.request = Payload.Value_read { uid; stamp = s } }
        | None -> Some (Payload.Value_reply None))
      | _ -> Server.handle server ~now ~from env
    in
    Option.map Payload.encode_response resp

(* A tampering server rolled back to stale state that inflates its meta
   claims: the client proves the misbehaviour (stamp regression), the
   evidence store excludes the server, and auditing first exposes the
   rollback and then confirms gossip repaired it. *)
let test_evidence_and_audit_catch_rollback () =
  let w = make_world () in
  let evidence = Fault_evidence.create ~servers:(List.init 4 Fun.id) ~b:1 in
  in_world w (fun () ->
      let alice =
        connect w "alice" ~group:"g"
          ~cfg:(fun c -> { c with Client.evidence = Some evidence })
      in
      ok (Client.write alice ~item:"x" "v1");
      let stale = Server.snapshot w.servers.(0) in
      ok (Client.write alice ~item:"x" "v2");
      flood w;
      (* Roll server 0 back to the v1-only state and make it lie about
         freshness: its meta replies now claim a stamp it cannot back. *)
      (match
         Server.restore ~id:0 ~keyring:w.keyring ~n:w.n ~b:w.b stale
       with
      | None -> Alcotest.fail "snapshot did not restore"
      | Some rolled_back ->
        w.servers.(0) <- rolled_back;
        w.hmap.(0) <- stamp_regression_tamperer rolled_back);
      Alcotest.(check bool) "audit exposes the rollback" false
        (Audit.roots_agree w.servers);
      (* Alice's context demands v2; server 0's inflated claim sorts
         first, the fetch comes back too old, and that mismatch is a
         proof of misbehaviour. The read still succeeds elsewhere. *)
      Alcotest.(check string) "read survives the tamperer" "v2"
        (ok (Client.read alice ~item:"x"));
      Alcotest.(check bool) "server 0 proven faulty" true
        (Fault_evidence.is_proven evidence 0);
      Alcotest.(check bool) "proof is a stamp regression" true
        (Fault_evidence.proof_of evidence 0
        = Some Fault_evidence.Stamp_regression);
      Alcotest.(check int) "effective b drops" 0
        (Fault_evidence.effective_b evidence);
      Alcotest.(check bool) "reads now avoid the proven server" true
        (not (List.mem 0 (Fault_evidence.preferred_servers evidence))));
  (* Anti-entropy repair (section 5.2): an honest peer forwards its whole
     signed write for the item; the rolled-back server re-verifies the
     client signature and reinstalls v2 (the tamperer corrupts replies,
     not ingestion), and the audit roots re-converge. *)
  let uid = Uid.make ~group:"g" ~item:"x" in
  (match Server.current_write w.servers.(1) uid with
  | None -> Alcotest.fail "honest server lost v2"
  | Some w2 ->
    ignore
      (Server.handle w.servers.(0) ~now:0.0 ~from:1
         {
           Payload.token = None; epoch = 0;
           request = Payload.Gossip_push { writes = [ w2 ]; have = []; epoch = None };
         }));
  Alcotest.(check bool) "audit confirms repair after re-push" true
    (Audit.roots_agree w.servers)

(* ------------------------------------------------------------------ *)
(* Paper cost formulas (the section 6 accounting, as tests)           *)
(* ------------------------------------------------------------------ *)

let snapshot_around fn =
  Metrics.reset ();
  let before = Metrics.read () in
  let v = fn () in
  (v, Metrics.diff (Metrics.read ()) before)

let test_costs_context_ops () =
  List.iter
    (fun (n, b) ->
      let w = make_world ~n ~b () in
      let q = Quorums.context_quorum ~n ~b in
      in_world w (fun () ->
          let alice = connect w "alice" ~group:"g" in
          ok (Client.write alice ~item:"x" "v");
          let _, m = snapshot_around (fun () -> ok (Client.disconnect alice)) in
          Alcotest.(check int)
            (Printf.sprintf "ctx store msgs n=%d b=%d" n b)
            (2 * q) m.Metrics.messages;
          Alcotest.(check int) "one signature" 1 m.Metrics.signs;
          Alcotest.(check int) "q server verifies" q m.Metrics.server_verifies);
      in_world w (fun () ->
          let (_ : Client.t), m = snapshot_around (fun () -> connect w "alice" ~group:"g") in
          Alcotest.(check int)
            (Printf.sprintf "ctx read msgs n=%d b=%d" n b)
            (2 * q) m.Metrics.messages;
          Alcotest.(check int) "best case one verification" 1 m.Metrics.verifies))
    [ (4, 1); (7, 2); (10, 3); (13, 4) ]

let test_costs_data_write () =
  List.iter
    (fun (n, b) ->
      let w = make_world ~n ~b () in
      in_world w (fun () ->
          let alice =
            connect w "alice" ~group:"g"
              ~cfg:(fun c -> { c with Client.paper_cost_model = true })
          in
          let _, m = snapshot_around (fun () -> ok (Client.write alice ~item:"x" "v")) in
          Alcotest.(check int)
            (Printf.sprintf "write msgs = b+1 (n=%d b=%d)" n b)
            (b + 1) m.Metrics.messages;
          Alcotest.(check int) "one signature" 1 m.Metrics.signs;
          Alcotest.(check int) "b+1 server verifies" (b + 1) m.Metrics.server_verifies))
    [ (4, 1); (7, 2); (10, 3) ]

let test_costs_data_read () =
  List.iter
    (fun (n, b) ->
      let w = make_world ~n ~b () in
      in_world w (fun () ->
          let alice =
            connect w "alice" ~group:"g"
              ~cfg:(fun c -> { c with Client.paper_cost_model = true })
          in
          ok (Client.write alice ~item:"x" "v");
          let _, m = snapshot_around (fun () -> ok (Client.read alice ~item:"x")) in
          (* b+1 meta round trips plus one value fetch round trip. *)
          Alcotest.(check int)
            (Printf.sprintf "read msgs (n=%d b=%d)" n b)
            ((2 * (b + 1)) + 2)
            m.Metrics.messages;
          Alcotest.(check int) "one client verification" 1 m.Metrics.verifies;
          Alcotest.(check int) "no signing on read" 0 m.Metrics.signs))
    [ (4, 1); (7, 2); (10, 3) ]

let test_costs_multi_writer () =
  List.iter
    (fun (n, b) ->
      let w = make_world ~n ~b () in
      in_world w (fun () ->
          let alice =
            connect w "alice" ~group:"g"
              ~cfg:(fun c -> { (mw c) with Client.paper_cost_model = true })
          in
          let _, mw_write =
            snapshot_around (fun () -> ok (Client.write alice ~item:"x" "v"))
          in
          Alcotest.(check int)
            (Printf.sprintf "mw write msgs = 2b+1 (n=%d b=%d)" n b)
            ((2 * b) + 1)
            mw_write.Metrics.messages;
          let _, mw_read = snapshot_around (fun () -> ok (Client.read alice ~item:"x")) in
          Alcotest.(check int)
            (Printf.sprintf "mw read msgs = 2(2b+1) (n=%d b=%d)" n b)
            (2 * ((2 * b) + 1))
            mw_read.Metrics.messages;
          Alcotest.(check int) "no client verify on vouched read" 0
            mw_read.Metrics.verifies))
    [ (4, 1); (7, 2); (10, 3) ]

(* ------------------------------------------------------------------ *)
(* Property: MRC monotonicity under random schedules & faults         *)
(* ------------------------------------------------------------------ *)

let prop_mrc_monotonic =
  QCheck.Test.make ~name:"MRC never regresses (random schedules, 1 byzantine)"
    ~count:30
    QCheck.(pair int (int_range 0 5))
    (fun (seed, byz_choice) ->
      let w = make_world ~n:4 ~b:1 () in
      let behavior =
        List.nth
          [
            Faults.Honest; Faults.Crash; Faults.Stale; Faults.Corrupt_value;
            Faults.Corrupt_meta; Faults.Equivocate;
          ]
          byz_choice
      in
      wrap w 0 behavior;
      let rng = Sim.Srng.create seed in
      let ok_or_none = function Ok v -> Some v | Error _ -> None in
      in_world w (fun () ->
          let alice = connect w "alice" ~group:"g" in
          let bob =
            connect w "bob" ~group:"g"
              ~cfg:(fun c -> { c with Client.read_spread = true; seed })
          in
          let version = ref 0 in
          let last_seen = ref (-1) in
          let sound = ref true in
          for _ = 1 to 25 do
            match Sim.Srng.int_below rng 3 with
            | 0 ->
              incr version;
              ignore (ok_or_none (Client.write alice ~item:"x" (string_of_int !version)))
            | 1 ->
              ignore (Gossip.exchange_once ~servers:w.servers ~rng ())
            | _ -> (
              match ok_or_none (Client.read bob ~item:"x") with
              | Some v ->
                let v = int_of_string v in
                if v < !last_seen then sound := false;
                last_seen := max !last_seen v
              | None -> ())
          done;
          !sound))

(* ------------------------------------------------------------------ *)
(* Server unit behaviours                                             *)
(* ------------------------------------------------------------------ *)

let direct_write w i write ~await_ack =
  Server.handle w.servers.(i) ~now:0.0 ~from:(-1)
    { Payload.token = None; epoch = 0; request = Payload.Write_req { write; await_ack } }

let test_server_rejects_duplicates () =
  let w = make_world () in
  let uid = Uid.make ~group:"g" ~item:"x" in
  let write =
    Signing.sign_write ~key:(key_of "alice") ~writer:"alice" ~uid
      ~stamp:(Stamp.scalar 5) "v"
  in
  Alcotest.(check bool) "first accepted" true
    (direct_write w 0 write ~await_ack:true = Some Payload.Ack);
  (* An identical resend is a client retry after a lost ack: it must be
     acknowledged (idempotently), not rejected, and stored only once. *)
  Alcotest.(check bool) "identical retry acked" true
    (direct_write w 0 write ~await_ack:true = Some Payload.Ack);
  Alcotest.(check int) "stored once" 1 (List.length (Server.log_writes w.servers.(0) uid));
  (* A *different* body under the same stamp is not a retry. *)
  let forged =
    Signing.sign_write ~key:(key_of "alice") ~writer:"alice" ~uid
      ~stamp:(Stamp.scalar 5) "forged"
  in
  Alcotest.(check bool) "same-stamp different-body rejected" true
    (direct_write w 0 forged ~await_ack:true
    = Some (Payload.Denied "write rejected"));
  Alcotest.(check int) "still stored once" 1
    (List.length (Server.log_writes w.servers.(0) uid))

let test_server_rejects_stamp_kind_mix () =
  let w = make_world () in
  let uid = Uid.make ~group:"g" ~item:"x" in
  let scalar_write =
    Signing.sign_write ~key:(key_of "alice") ~writer:"alice" ~uid
      ~stamp:(Stamp.scalar 5) "v"
  in
  let multi_write =
    Signing.sign_write ~key:(key_of "alice") ~writer:"alice" ~uid
      ~stamp:(Stamp.multi ~time:9 ~writer:"alice" ~value:"w") "w"
  in
  ignore (direct_write w 0 scalar_write ~await_ack:true);
  Alcotest.(check bool) "kind mix rejected" true
    (direct_write w 0 multi_write ~await_ack:true
    = Some (Payload.Denied "write rejected"));
  match Server.current_write w.servers.(0) uid with
  | Some stored -> Alcotest.(check string) "scalar value kept" "v" stored.Payload.value
  | None -> Alcotest.fail "lost the original"

let test_server_ctx_seq_ordering () =
  let w = make_world () in
  let record seq =
    Signing.sign_context ~key:(key_of "alice") ~client:"alice" ~group:"g" ~seq
      Context.empty
  in
  let send r =
    Server.handle w.servers.(0) ~now:0.0 ~from:(-1)
      {
        Payload.token = None; epoch = 0;
        request = Payload.Ctx_write { client = "alice"; group = "g"; record = r };
      }
  in
  ignore (send (record 5));
  ignore (send (record 3)) (* stale: must not overwrite *);
  let got =
    Server.handle w.servers.(0) ~now:0.0 ~from:(-1)
      { Payload.token = None; epoch = 0; request = Payload.Ctx_read { client = "alice"; group = "g" } }
  in
  (match got with
  | Some (Payload.Ctx_reply (Some r)) -> Alcotest.(check int) "kept newest seq" 5 r.Payload.seq
  | _ -> Alcotest.fail "no context");
  (* Forged context: rejected before storage. *)
  let forged = { (record 9) with Payload.signature = String.make 64 'x' } in
  (match send forged with
  | Some (Payload.Denied _) -> ()
  | _ -> Alcotest.fail "forged context accepted");
  match
    Server.handle w.servers.(0) ~now:0.0 ~from:(-1)
      { Payload.token = None; epoch = 0; request = Payload.Ctx_read { client = "alice"; group = "g" } }
  with
  | Some (Payload.Ctx_reply (Some r)) -> Alcotest.(check int) "still seq 5" 5 r.Payload.seq
  | _ -> Alcotest.fail "context lost"

let test_client_no_quorum_when_majority_down () =
  let w = make_world ~n:4 ~b:1 () in
  (* Take down 3 of 4 servers: the context quorum of 3 is unreachable. *)
  for i = 1 to 3 do
    wrap w i Faults.Crash
  done;
  in_world w (fun () ->
      let config = Client.default_config ~n:4 ~b:1 in
      let config = { config with Client.timeout = 0.05 } in
      match
        Client.connect ~config ~uid:"alice" ~key:(key_of "alice")
          ~keyring:w.keyring ~group:"g" ()
      with
      | Error (Client.No_quorum { wanted = 3; _ }) -> ()
      | Error e -> Alcotest.failf "unexpected error: %s" (Client.error_to_string e)
      | Ok _ -> Alcotest.fail "connected without a quorum")

(* ------------------------------------------------------------------ *)
(* Persistence                                                        *)
(* ------------------------------------------------------------------ *)

let test_snapshot_restore () =
  let w = make_world ~n:4 ~b:1 () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "v1");
      ok (Client.write alice ~item:"x" "v2");
      ok (Client.write alice ~item:"y" "w1");
      ok (Client.disconnect alice));
  let blob = Server.snapshot w.servers.(0) in
  (match Server.restore ~id:0 ~keyring:w.keyring ~n:4 ~b:1 blob with
  | None -> Alcotest.fail "restore failed"
  | Some restored ->
    let uid = Uid.make ~group:"g" ~item:"x" in
    (match (Server.current_write restored uid, Server.current_write w.servers.(0) uid) with
    | Some a, Some b -> Alcotest.(check bool) "current preserved" true (a = b)
    | _ -> Alcotest.fail "current write lost");
    Alcotest.(check int) "log preserved" 2
      (List.length (Server.log_writes restored uid));
    Alcotest.(check int) "items preserved" 2 (Server.item_count restored);
    Alcotest.(check int) "audit preserved"
      (List.length (Server.audit_log w.servers.(0)))
      (List.length (Server.audit_log restored));
    (* A restored server keeps serving the protocol: swap it in and read. *)
    w.hmap.(0) <- Server.handler restored;
    in_world w (fun () ->
        let alice = connect w "alice" ~group:"g" in
        Alcotest.(check string) "serves after restart" "v2"
          (ok (Client.read alice ~item:"x"))));
  (* Corrupt snapshots are rejected, not crashed on. *)
  Alcotest.(check bool) "garbage rejected" true
    (Server.restore ~id:0 ~keyring:w.keyring ~n:4 ~b:1 "junk" = None);
  Alcotest.(check bool) "wrong id rejected" true
    (Server.restore ~id:3 ~keyring:w.keyring ~n:4 ~b:1 blob = None)

let test_save_load_file () =
  let w = make_world ~n:4 ~b:1 () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      ok (Client.write alice ~item:"x" "persisted"));
  let path = Filename.temp_file "securestore" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Server.save_file w.servers.(0) ~path;
      match Server.load_file ~id:0 ~keyring:w.keyring ~n:4 ~b:1 ~path () with
      | None -> Alcotest.fail "load_file failed"
      | Some restored ->
        let uid = Uid.make ~group:"g" ~item:"x" in
        (match Server.current_write restored uid with
        | Some wr -> Alcotest.(check string) "value survives" "persisted" wr.Payload.value
        | None -> Alcotest.fail "item lost"));
  Alcotest.(check bool) "missing file" true
    (Server.load_file ~id:0 ~keyring:w.keyring ~n:4 ~b:1 ~path:"/nonexistent/x" ()
    = None)

let test_snapshot_preserves_held_writes () =
  let w = mw_guarded_world () in
  let doc = Uid.make ~group:"plan" ~item:"doc" in
  let dep = Uid.make ~group:"plan" ~item:"dep" in
  let dep_stamp = Stamp.multi ~time:5 ~writer:"alice" ~value:"base" in
  let doc_write =
    Signing.sign_write ~key:(key_of "alice") ~writer:"alice" ~uid:doc
      ~stamp:(Stamp.multi ~time:6 ~writer:"alice" ~value:"final")
      ~wctx:(Context.of_bindings [ (dep, dep_stamp) ])
      "final"
  in
  ignore
    (Server.handle w.servers.(0) ~now:0.0 ~from:(-1)
       { Payload.token = None; epoch = 0; request = Payload.Write_req { write = doc_write; await_ack = true } });
  Alcotest.(check int) "held before snapshot" 1 (Server.pending_count w.servers.(0) doc);
  let config =
    { (Server.default_config ~n:4 ~b:1) with Server.malicious_client_guard = true }
  in
  match Server.restore ~config ~id:0 ~keyring:w.keyring ~n:4 ~b:1 (Server.snapshot w.servers.(0)) with
  | None -> Alcotest.fail "restore failed"
  | Some restored ->
    Alcotest.(check int) "still held after restart" 1 (Server.pending_count restored doc);
    (* The dependency arriving after restart releases the held write. *)
    let dep_write =
      Signing.sign_write ~key:(key_of "alice") ~writer:"alice" ~uid:dep
        ~stamp:dep_stamp "base"
    in
    ignore
      (Server.handle restored ~now:0.0 ~from:(-1)
         { Payload.token = None; epoch = 0; request = Payload.Write_req { write = dep_write; await_ack = true } });
    Alcotest.(check bool) "released after restart" true
      (Server.current_write restored doc <> None)

(* ------------------------------------------------------------------ *)
(* Config epochs & reconfiguration                                    *)
(* ------------------------------------------------------------------ *)

let force = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let test_epoch_chain_and_codec () =
  let admin = key_of "admin" in
  let g = force (Config_epoch.genesis ~servers:[ 3; 0; 1; 2; 1 ] ~b:1 ()) in
  Alcotest.(check int) "genesis version" 1 (Config_epoch.version g);
  Alcotest.(check (list int)) "servers sorted + deduped" [ 0; 1; 2; 3 ]
    (Config_epoch.servers g);
  Alcotest.(check bool) "genesis validates" true (Config_epoch.validate g = Ok ());
  Alcotest.(check bool) "too few servers refused" true
    (match Config_epoch.genesis ~servers:[ 0; 1 ] ~b:1 () with
    | Error _ -> true
    | Ok _ -> false);
  let g = Config_epoch.sign g admin in
  Alcotest.(check bool) "signature verifies" true
    (Config_epoch.verify g admin.Crypto.Rsa.public);
  Alcotest.(check bool) "wrong key refused" false
    (Config_epoch.verify g (key_of "mallory").Crypto.Rsa.public);
  let e2 = Config_epoch.sign (force (Config_epoch.next g ~servers:[ 1; 2; 3; 4 ] ~b:1 ())) admin in
  Alcotest.(check int) "successor version" 2 (Config_epoch.version e2);
  Alcotest.(check bool) "chains to predecessor" true (Config_epoch.follows ~prev:g e2);
  Alcotest.(check bool) "does not chain to itself" false
    (Config_epoch.follows ~prev:e2 e2);
  (* The digest covers every field but the signature: flipping the fault
     bound invalidates the admin signature. *)
  Alcotest.(check bool) "tamper breaks signature" false
    (Config_epoch.verify { e2 with Config_epoch.b = 0 } admin.Crypto.Rsa.public);
  (* Wire round-trip preserves the chain and the signature. *)
  match Config_epoch.of_string (Config_epoch.to_string e2) with
  | None -> Alcotest.fail "codec round-trip failed"
  | Some back ->
    Alcotest.(check bool) "round-trip equal" true (back = e2);
    Alcotest.(check bool) "round-trip still chains" true
      (Config_epoch.follows ~prev:g back);
    Alcotest.(check bool) "garbage decodes to None" true
      (Config_epoch.of_string "not an epoch" = None)

(* A server with an installed epoch answers requests from a superseded
   epoch with [Stale_epoch], piggybacking the newer config — except
   membership traffic, which is the repair channel itself. *)
let test_epoch_stale_gate () =
  let w = make_world () in
  let g = force (Config_epoch.genesis ~servers:[ 0; 1; 2; 3 ] ~b:1 ()) in
  Server.set_epoch w.servers.(0) g;
  Alcotest.(check int) "installed" 1 (Server.epoch_version w.servers.(0));
  let uid = Uid.make ~group:"g" ~item:"x" in
  let write =
    Signing.sign_write ~key:(key_of "alice") ~writer:"alice" ~uid
      ~stamp:(Stamp.scalar 5) "v"
  in
  let env epoch request = { Payload.token = None; epoch; request } in
  let handle e = Server.handle w.servers.(0) ~now:0.0 ~from:(-1) e in
  (* A pre-epoch (version 0) envelope is superseded. *)
  (match handle (env 0 (Payload.Write_req { write; await_ack = true })) with
  | Some (Payload.Stale_epoch cur) ->
    Alcotest.(check int) "piggybacked config" 1 (Config_epoch.version cur)
  | _ -> Alcotest.fail "expected Stale_epoch");
  Alcotest.(check bool) "nothing stored" true
    (Server.current_write w.servers.(0) uid = None);
  (* The same request at the current epoch is served. *)
  Alcotest.(check bool) "current-epoch write accepted" true
    (handle (env 1 (Payload.Write_req { write; await_ack = true }))
    = Some Payload.Ack);
  (match handle (env 1 (Payload.Read_inline { uid })) with
  | Some (Payload.Value_reply (Some stored)) ->
    Alcotest.(check string) "readable" "v" stored.Payload.value
  | _ -> Alcotest.fail "read failed at current epoch");
  (* Epoch discovery is never gated: that is how laggards repair. *)
  match handle (env 0 Payload.Epoch_get) with
  | Some (Payload.Epoch_reply (Some e)) ->
    Alcotest.(check int) "discovery answers" 1 (Config_epoch.version e)
  | _ -> Alcotest.fail "Epoch_get was gated"

(* The announced-transition rule: direct successors must hash-chain;
   version jumps are accepted on the admin signature alone; anything
   unsigned, older, or mis-chained is refused; and adopting an epoch
   that drops this server starts its drain. *)
let test_epoch_adoption_rules () =
  let admin = key_of "admin" in
  let config =
    { (Server.default_config ~n:4 ~b:1) with
      Server.epoch_admin = Some admin.Crypto.Rsa.public
    }
  in
  let w = make_world ~server_config:config () in
  let s = w.servers.(0) in
  let g =
    Config_epoch.sign (force (Config_epoch.genesis ~servers:[ 0; 1; 2; 3 ] ~b:1 ())) admin
  in
  Server.set_epoch s g;
  let e2 = force (Config_epoch.next g ~servers:[ 0; 1; 2; 3; 4 ] ~b:1 ()) in
  Alcotest.(check bool) "unsigned refused" true
    (Server.try_adopt_epoch s e2 = Error "epoch not signed by admin");
  let e2 = Config_epoch.sign e2 admin in
  Alcotest.(check bool) "signed successor adopted" true
    (Server.try_adopt_epoch s e2 = Ok ());
  Alcotest.(check int) "at version 2" 2 (Server.epoch_version s);
  Alcotest.(check bool) "replayed older epoch refused" true
    (Server.try_adopt_epoch s g = Error "epoch not newer");
  (* A version-3 epoch chained to a *different* version-2 epoch: signed,
     but it does not follow what this server holds. *)
  let alt2 = force (Config_epoch.next g ~servers:[ 0; 1; 2; 3 ] ~b:1 ()) in
  let forked = Config_epoch.sign (force (Config_epoch.next alt2 ~servers:[ 0; 1; 2; 3 ] ~b:1 ())) admin in
  Alcotest.(check bool) "mis-chained successor refused" true
    (Server.try_adopt_epoch s forked
    = Error "epoch does not chain to predecessor");
  Alcotest.(check int) "still at version 2" 2 (Server.epoch_version s);
  (* A version jump (2 -> 4, e.g. after missing an announcement) is
     accepted on the admin signature alone. *)
  let e3 = Config_epoch.sign (force (Config_epoch.next e2 ~servers:[ 0; 1; 2; 3; 4 ] ~b:1 ())) admin in
  let e4 = Config_epoch.sign (force (Config_epoch.next e3 ~servers:[ 0; 1; 2; 3; 4 ] ~b:1 ())) admin in
  Alcotest.(check bool) "signed version jump adopted" true
    (Server.try_adopt_epoch s e4 = Ok ());
  Alcotest.(check int) "at version 4" 4 (Server.epoch_version s);
  Alcotest.(check bool) "still serving" false (Server.draining s);
  (* An epoch that drops this server from the membership drains it. *)
  let e5 = Config_epoch.sign (force (Config_epoch.next e4 ~servers:[ 1; 2; 3; 4 ] ~b:1 ())) admin in
  Alcotest.(check bool) "departure adopted" true (Server.try_adopt_epoch s e5 = Ok ());
  Alcotest.(check bool) "draining after departure" true (Server.draining s);
  (* Re-admission in a later epoch clears the drain — a remove-then-
     re-add cycle must not leave the server permanently write-refusing
     (the flag is persisted in snapshots, so it would even survive
     restarts). *)
  let e6 = Config_epoch.sign (force (Config_epoch.next e5 ~servers:[ 0; 1; 2; 3; 4 ] ~b:1 ())) admin in
  Alcotest.(check bool) "re-admission adopted" true
    (Server.try_adopt_epoch s e6 = Ok ());
  Alcotest.(check bool) "drain cleared on rejoin" false (Server.draining s)

(* Epochs travel over unauthenticated channels (gossip has no token,
   announcements are epoch-exempt), so a server with no pinned admin
   key must refuse every announced transition — otherwise anyone who
   can reach the port could push a config excluding the server and flip
   it into draining, with the flag persisted across restarts. *)
let test_epoch_requires_admin_key () =
  let w = make_world () in
  let s = w.servers.(0) in
  let admin = key_of "admin" in
  let e =
    Config_epoch.sign (force (Config_epoch.genesis ~servers:[ 1; 2; 3; 4 ] ~b:1 ())) admin
  in
  Alcotest.(check bool) "direct adoption refused" true
    (Server.try_adopt_epoch s e = Error "no admin key");
  (match
     Server.handle s ~now:0.0 ~from:(-1)
       { Payload.token = None; epoch = 0; request = Payload.Epoch_announce e }
   with
  | Some (Payload.Denied "no admin key") -> ()
  | _ -> Alcotest.fail "announcement was not refused");
  (* The gossip piggyback is the same unauthenticated channel. *)
  ignore
    (Server.handle s ~now:0.0 ~from:1
       {
         Payload.token = None; epoch = 0;
         request = Payload.Gossip_push { writes = []; have = []; epoch = Some e };
       });
  Alcotest.(check int) "no epoch installed" 0 (Server.epoch_version s);
  Alcotest.(check bool) "not draining" false (Server.draining s)

(* A client with no pinned admin key is a static deployment: a single
   Byzantine server's [Stale_epoch] must not replace its server set and
   fault bound. Server 0 claims a fabricated membership of just itself;
   the client must ignore it and keep its quorum math over the
   configured servers. *)
let test_client_ignores_epoch_without_admin_key () =
  let w = make_world () in
  let evil = force (Config_epoch.genesis ~servers:[ 0 ] ~b:0 ()) in
  Server.set_epoch w.servers.(0) evil;
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" in
      Alcotest.(check bool) "no epoch adopted at connect" true
        (Client.epoch alice = None);
      ok (Client.write alice ~item:"x" "v1");
      Alcotest.(check bool) "no epoch adopted mid-session" true
        (Client.epoch alice = None);
      Alcotest.(check string) "reads use the real quorum" "v1"
        (ok (Client.read alice ~item:"x")))

(* A draining server refuses new client writes but keeps serving reads,
   so departing replicas stay useful while their state drains out. *)
let test_drain_denies_new_writes () =
  let w = make_world () in
  let uid = Uid.make ~group:"g" ~item:"x" in
  let before =
    Signing.sign_write ~key:(key_of "alice") ~writer:"alice" ~uid
      ~stamp:(Stamp.scalar 5) "kept"
  in
  Alcotest.(check bool) "write before drain" true
    (direct_write w 0 before ~await_ack:true = Some Payload.Ack);
  Server.begin_drain w.servers.(0);
  let after =
    Signing.sign_write ~key:(key_of "alice") ~writer:"alice" ~uid
      ~stamp:(Stamp.scalar 6) "refused"
  in
  Alcotest.(check bool) "new write denied" true
    (direct_write w 0 after ~await_ack:true
    = Some (Payload.Denied "draining"));
  (* Context records are not gossiped on the write path, so one stored
     on a departing server would be lost at handoff: also denied. *)
  let record =
    Signing.sign_context ~key:(key_of "alice") ~client:"alice" ~group:"g"
      ~seq:1 Context.empty
  in
  (match
     Server.handle w.servers.(0) ~now:0.0 ~from:(-1)
       {
         Payload.token = None; epoch = 0;
         request = Payload.Ctx_write { client = "alice"; group = "g"; record };
       }
   with
  | Some (Payload.Denied "draining") -> ()
  | _ -> Alcotest.fail "context write accepted while draining");
  match
    Server.handle w.servers.(0) ~now:0.0 ~from:(-1)
      { Payload.token = None; epoch = 0; request = Payload.Read_inline { uid } }
  with
  | Some (Payload.Value_reply (Some stored)) ->
    Alcotest.(check string) "reads still served" "kept" stored.Payload.value
  | _ -> Alcotest.fail "draining server stopped serving reads"

(* Graceful departure round-trip: a drained server's snapshot carries
   its epoch and drain flag, and no acknowledged write is lost across
   the save/restart. *)
let test_drain_restart_preserves_writes () =
  let admin = key_of "admin" in
  let w = make_world () in
  let uid = Uid.make ~group:"g" ~item:"x" in
  let write =
    Signing.sign_write ~key:(key_of "alice") ~writer:"alice" ~uid
      ~stamp:(Stamp.scalar 5) "survives"
  in
  Alcotest.(check bool) "acked" true
    (direct_write w 0 write ~await_ack:true = Some Payload.Ack);
  let e =
    Config_epoch.sign (force (Config_epoch.genesis ~servers:[ 0; 1; 2; 3 ] ~b:1 ())) admin
  in
  Server.set_epoch w.servers.(0) e;
  Server.begin_drain w.servers.(0);
  let path = Filename.temp_file "securestore" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Server.save_file w.servers.(0) ~path;
      match Server.load_result ~id:0 ~keyring:w.keyring ~n:4 ~b:1 ~path () with
      | Error msg -> Alcotest.failf "reload failed: %s" msg
      | Ok restored ->
        Alcotest.(check int) "epoch survives restart" 1
          (Server.epoch_version restored);
        Alcotest.(check bool) "drain flag survives restart" true
          (Server.draining restored);
        (match Server.current_write restored uid with
        | Some stored ->
          Alcotest.(check string) "no write lost" "survives" stored.Payload.value
        | None -> Alcotest.fail "acknowledged write lost across drain-restart"))

(* Crash-safety of the snapshot file format itself: a truncated or
   bit-flipped blob is refused with a clear reason, never loaded as
   silently wrong state and never a decoder crash. *)
let test_snapshot_corruption_rejected () =
  let w = make_world () in
  let uid = Uid.make ~group:"g" ~item:"x" in
  let write =
    Signing.sign_write ~key:(key_of "alice") ~writer:"alice" ~uid
      ~stamp:(Stamp.scalar 5) "v"
  in
  ignore (direct_write w 0 write ~await_ack:true);
  let blob = Server.snapshot w.servers.(0) in
  let expect_corrupt label blob =
    match Server.restore_result ~id:0 ~keyring:w.keyring ~n:4 ~b:1 blob with
    | Ok _ -> Alcotest.failf "%s: corrupt snapshot loaded" label
    | Error msg ->
      Alcotest.(check bool)
        (label ^ " refused with a clear reason")
        true
        (String.length msg >= 16 && String.sub msg 0 16 = "corrupt snapshot")
  in
  Alcotest.(check bool) "intact blob loads" true
    (Result.is_ok (Server.restore_result ~id:0 ~keyring:w.keyring ~n:4 ~b:1 blob));
  (* Truncation: a crash mid-write leaves a short file. *)
  expect_corrupt "truncated" (String.sub blob 0 (String.length blob / 2));
  expect_corrupt "trailer cut" (String.sub blob 0 (String.length blob - 1));
  (* A single flipped byte in the middle fails the integrity trailer. *)
  let flipped = Bytes.of_string blob in
  let mid = Bytes.length flipped / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 1));
  expect_corrupt "bit flip" (Bytes.to_string flipped);
  (* And via the file path used by the real server binary. *)
  let path = Filename.temp_file "securestore" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc (String.sub blob 0 (String.length blob / 3));
      close_out oc;
      match Server.load_result ~id:0 ~keyring:w.keyring ~n:4 ~b:1 ~path () with
      | Ok _ -> Alcotest.fail "truncated file loaded"
      | Error msg ->
        Alcotest.(check bool) "file load refused" true
          (String.length msg >= 16 && String.sub msg 0 16 = "corrupt snapshot"))

(* Keytree + Confidential integration: the section 5.2 story for shared
   readers. The owner manages the reader group with an LKH key tree;
   evicting a reader rotates the group key and re-encrypts the data, so
   the evicted reader keeps access to nothing new. *)
let test_group_key_rotation_end_to_end () =
  let w = make_world () in
  let mgr = Crypto.Keytree.create_manager ~capacity:4 ~seed:"readers" in
  let leaf name = Crypto.Sha256.digest ("reader-leaf:" ^ name) in
  let bob_view = Crypto.Keytree.create_member ~name:"bob" ~leaf_key:(leaf "bob") in
  let carol_view = Crypto.Keytree.create_member ~name:"carol" ~leaf_key:(leaf "carol") in
  let broadcast msgs =
    Crypto.Keytree.apply bob_view msgs;
    Crypto.Keytree.apply carol_view msgs
  in
  broadcast (Crypto.Keytree.join mgr ~name:"bob" ~leaf_key:(leaf "bob"));
  broadcast (Crypto.Keytree.join mgr ~name:"carol" ~leaf_key:(leaf "carol"));
  (* Alice publishes under the group key; both readers decrypt. *)
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"news" in
      let sealed =
        Confidential.make ~client:alice ~key:(Crypto.Keytree.group_key mgr) ()
      in
      ok (Confidential.write sealed ~item:"letter" "issue 1");
      let read_as view name =
        match Crypto.Keytree.member_group_key view with
        | None -> Alcotest.failf "%s has no group key" name
        | Some key ->
          let session = connect w name ~group:"news" in
          Confidential.read (Confidential.make ~client:session ~key ()) ~item:"letter"
      in
      Alcotest.(check string) "bob decrypts" "issue 1" (ok (read_as bob_view "bob"));
      Alcotest.(check string) "carol decrypts" "issue 1" (ok (read_as carol_view "carol"));
      (* Bob is evicted: rekey the group, rotate the data to the new key. *)
      let msgs = Crypto.Keytree.leave mgr ~name:"bob" in
      broadcast msgs;
      ok
        (Confidential.rotate_key sealed ~new_key:(Crypto.Keytree.group_key mgr)
           ~items:[ "letter" ]);
      ok (Confidential.write sealed ~item:"letter" "issue 2 (members only)");
      Alcotest.(check string) "carol follows the rotation" "issue 2 (members only)"
        (ok (read_as carol_view "carol"));
      (* Bob's stale key no longer decrypts anything current. *)
      let bob_key = Option.get (Crypto.Keytree.member_group_key bob_view) in
      Alcotest.(check bool) "bob's key is stale" false
        (bob_key = Crypto.Keytree.group_key mgr);
      let bob_session = connect w "bob" ~group:"news" in
      match
        Confidential.read_opt
          (Confidential.make ~client:bob_session ~key:bob_key ())
          ~item:"letter"
      with
      | Ok None -> ()
      | Ok (Some v) -> Alcotest.failf "evicted reader decrypted: %s" v
      | Error e -> Alcotest.failf "unexpected: %s" (Client.error_to_string e))

(* Partitions: a client that can reach too few servers cannot assemble a
   context quorum; when the partition heals the same store works again.
   Runs under the discrete-event engine (partitions are a network
   property, not a server one). *)
let test_partition_and_heal () =
  let w = make_world ~n:4 ~b:1 () in
  let engine = Sim.Engine.create ~seed:3 () in
  Array.iteri
    (fun i _ ->
      Sim.Engine.add_server engine i (fun ~now ~from payload ->
          w.hmap.(i) ~now ~from payload))
    w.servers;
  (* Cut servers 2 and 3 off from everyone. *)
  Sim.Engine.set_reachable engine (fun src dst ->
      let cut x = x = 2 || x = 3 in
      not (cut src || cut dst));
  let phase1 = ref None and phase2 = ref None in
  Sim.Engine.spawn engine (fun () ->
      let config =
        { (Client.default_config ~n:4 ~b:1) with Client.timeout = 0.2 }
      in
      (match
         Client.connect ~config ~uid:"alice" ~key:(key_of "alice")
           ~keyring:w.keyring ~group:"g" ()
       with
      | Error (Client.No_quorum _) -> phase1 := Some `No_quorum
      | Error _ -> phase1 := Some `Other
      | Ok _ -> phase1 := Some `Connected);
      (* Heal and retry. *)
      Sim.Engine.set_reachable engine (fun _ _ -> true);
      match
        Client.connect ~config ~uid:"alice" ~key:(key_of "alice")
          ~keyring:w.keyring ~group:"g" ()
      with
      | Ok session -> (
        match Client.write session ~item:"x" "post-heal" with
        | Ok () -> phase2 := Some `Wrote
        | Error _ -> phase2 := Some `Write_failed)
      | Error _ -> phase2 := Some `Connect_failed);
  Sim.Engine.run engine;
  Alcotest.(check bool) "partitioned connect refused" true (!phase1 = Some `No_quorum);
  Alcotest.(check bool) "healed store works" true (!phase2 = Some `Wrote)

(* CC safety: whenever a reader obtains y (which the writer produced
   after writing version i of x), any later read of x must return
   version >= i — no causally overwritten value is ever readable,
   whatever the schedule and despite one Byzantine server. *)
let prop_cc_no_overwritten_reads =
  QCheck.Test.make ~name:"CC never serves causally overwritten values"
    ~count:25
    QCheck.(pair int (int_range 0 5))
    (fun (seed, byz_choice) ->
      let w = make_world ~n:4 ~b:1 () in
      let behavior =
        List.nth
          [
            Faults.Honest; Faults.Crash; Faults.Stale; Faults.Corrupt_value;
            Faults.Corrupt_meta; Faults.Equivocate;
          ]
          byz_choice
      in
      wrap w 0 behavior;
      let rng = Sim.Srng.create seed in
      in_world w (fun () ->
          let alice = connect w "alice" ~group:"g" ~cfg:cc in
          let bob =
            connect w "bob" ~group:"g"
              ~cfg:(fun c -> { (cc c) with Client.read_spread = true; seed })
          in
          let version = ref 0 in
          let sound = ref true in
          for _ = 1 to 20 do
            match Sim.Srng.int_below rng 3 with
            | 0 ->
              (* A causally linked pair: x := i, then y := "i" (y's
                 context names x's fresh stamp). *)
              incr version;
              (match Client.write alice ~item:"x" (string_of_int !version) with
              | Ok () -> (
                match Client.write alice ~item:"y" (string_of_int !version) with
                | Ok () -> ()
                | Error _ -> ())
              | Error _ -> decr version)
            | 1 -> ignore (Gossip.exchange_once ~servers:w.servers ~rng ())
            | _ -> (
              match Client.read bob ~item:"y" with
              | Ok y_version -> (
                let depends_on = int_of_string y_version in
                match Client.read bob ~item:"x" with
                | Ok x_version ->
                  if int_of_string x_version < depends_on then sound := false
                | Error _ -> ())
              | Error _ -> ())
          done;
          !sound))

(* ------------------------------------------------------------------ *)
(* Signature-verification cache                                       *)
(* ------------------------------------------------------------------ *)

let sc_keyring () =
  let keyring = Keyring.create () in
  Keyring.register keyring "alice" (key_of "alice").Crypto.Rsa.public;
  keyring

let signed_write ~item value =
  let uid = Uid.make ~group:"sc" ~item in
  Signing.sign_write ~key:(key_of "alice") ~writer:"alice" ~uid
    ~stamp:(Stamp.scalar 1) value

let flip_byte s i = String.mapi (fun j c -> if j = i then Char.chr (Char.code c lxor 0x5a) else c) s

let test_sigcache_lru () =
  let c = Sigcache.create ~capacity:2 in
  Sigcache.add c "a" true;
  Sigcache.add c "b" false;
  Alcotest.(check (option bool)) "a hit" (Some true) (Sigcache.find c "a");
  (* b is now least-recently used; inserting a third key evicts it. *)
  Sigcache.add c "c" true;
  Alcotest.(check (option bool)) "b evicted" None (Sigcache.find c "b");
  Alcotest.(check (option bool)) "a kept" (Some true) (Sigcache.find c "a");
  Alcotest.(check (option bool)) "c kept" (Some true) (Sigcache.find c "c");
  Alcotest.(check int) "size bounded" 2 (Sigcache.size c);
  Alcotest.(check int) "hits" 3 (Sigcache.hits c);
  Alcotest.(check int) "misses" 1 (Sigcache.misses c);
  Sigcache.clear c;
  Alcotest.(check int) "cleared" 0 (Sigcache.size c);
  Alcotest.(check int) "counters cleared" 0 (Sigcache.hits c);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Sigcache.create: capacity must be positive") (fun () ->
      ignore (Sigcache.create ~capacity:0))

let test_sigcache_hit_consistency () =
  Signing.reset_sigcache ();
  let keyring = sc_keyring () in
  let w = signed_write ~item:"x" "v" in
  Metrics.reset ();
  Alcotest.(check bool) "cold verify ok" true (Signing.verify_write keyring w);
  Alcotest.(check bool) "warm verify same verdict" true
    (Signing.verify_write keyring w);
  Alcotest.(check bool) "server verify also hits" true
    (Signing.server_verify_write keyring w);
  let m = Metrics.read () in
  Alcotest.(check int) "paper-model client verifies" 2 m.Metrics.verifies;
  Alcotest.(check int) "paper-model server verifies" 1 m.Metrics.server_verifies;
  Alcotest.(check int) "one miss" 1 m.Metrics.sigcache_misses;
  Alcotest.(check int) "two hits" 2 m.Metrics.sigcache_hits;
  Alcotest.(check int) "one actual RSA op" 1 (Metrics.rsa_verifies m)

let test_sigcache_forged_never_valid () =
  Signing.reset_sigcache ();
  let keyring = sc_keyring () in
  let w = signed_write ~item:"y" "v" in
  let forged =
    match w.Payload.evidence with
    | Payload.Sig s -> { w with Payload.evidence = Payload.Sig (flip_byte s 7) }
    | _ -> Alcotest.fail "expected Sig evidence"
  in
  (* Repeated verification of a forgery stays false: its cached verdict
     is keyed by the forged bytes themselves. *)
  for _ = 1 to 3 do
    Alcotest.(check bool) "forged rejected" false
      (Signing.verify_write keyring forged)
  done;
  Alcotest.(check bool) "genuine write unaffected" true
    (Signing.verify_write keyring w);
  (* Tampering with an already-cached-valid write cannot reuse its
     verdict: the digest key binds the message bytes too. *)
  let tampered = { w with Payload.value = "other" } in
  Alcotest.(check bool) "tampered value rejected" false
    (Signing.verify_write keyring tampered);
  (* And the quiet diagnostic path leaves the counters alone. *)
  Metrics.reset ();
  Alcotest.(check bool) "quiet check" false (Signing.check_write_quiet keyring forged);
  let m = Metrics.read () in
  Alcotest.(check int) "quiet: no hit counted" 0 m.Metrics.sigcache_hits;
  Alcotest.(check int) "quiet: no miss counted" 0 m.Metrics.sigcache_misses

let prop_sigcache_bounded =
  QCheck.Test.make ~name:"sigcache bounded, last insert resident" ~count:100
    QCheck.(pair (int_range 1 8) (small_list small_nat))
    (fun (capacity, keys) ->
      let c = Sigcache.create ~capacity in
      List.iter (fun k -> Sigcache.add c (string_of_int k) (k mod 2 = 0)) keys;
      Sigcache.size c <= capacity
      &&
      match List.rev keys with
      | [] -> Sigcache.size c = 0
      | last :: _ ->
        Sigcache.find c (string_of_int last) = Some (last mod 2 = 0))

let prop_sigcache_verdict_stable =
  QCheck.Test.make ~name:"cached verdict = cold verdict" ~count:30
    QCheck.(pair string bool)
    (fun (value, corrupt) ->
      Signing.reset_sigcache ();
      let keyring = sc_keyring () in
      let w = signed_write ~item:"p" value in
      let w =
        match (corrupt, w.Payload.evidence) with
        | true, Payload.Sig s ->
          { w with Payload.evidence = Payload.Sig (flip_byte s 3) }
        | _ -> w
      in
      let cold = Signing.verify_write keyring w in
      let warm = Signing.verify_write keyring w in
      cold = warm && warm = not corrupt)

(* ------------------------------------------------------------------ *)
(* Write-path fast paths: MAC vectors, Merkle batches, escalation     *)
(* ------------------------------------------------------------------ *)

let mac_fast cfg =
  { cfg with Client.signing = Client.Mac_fast; escalate_every = 100 }

let merkle4 cfg = { cfg with Client.signing = Client.Merkle_batch 4 }

let mac_write_exn w ~writer ~item ~stamp value =
  let uid = Uid.make ~group:"g" ~item in
  match
    Signing.mac_write w.keyring ~writer ~uid ~stamp
      ~servers:(List.init w.n Fun.id) value
  with
  | Some mw -> mw
  | None -> Alcotest.fail "MAC keys missing in fixture"

let send_upgrade w i (mw : Payload.write) evidence =
  Server.handle w.servers.(i) ~now:0.0 ~from:(-1)
    {
      Payload.token = None; epoch = 0;
      request =
        Payload.Evidence_upgrade
          {
            uid = mw.Payload.uid;
            stamp = mw.Payload.stamp;
            writer = mw.Payload.writer;
            evidence;
          };
    }

(* Re-sign [writes] as one Merkle batch (what the client's escalation
   queue does). *)
let batch_evidence_of ~key writes =
  let sb = Signbatch.create ~key ~limit:(List.length writes) in
  List.iter (fun w -> ignore (Signbatch.add sb w)) writes;
  Signbatch.flush sb

let test_mac_write_held_and_upgraded () =
  let w = make_world () in
  let uid = Uid.make ~group:"g" ~item:"x" in
  let mw = mac_write_exn w ~writer:"alice" ~item:"x" ~stamp:(Stamp.scalar 5) "v" in
  Alcotest.(check bool) "mac write acked" true
    (direct_write w 0 mw ~await_ack:true = Some Payload.Ack);
  Alcotest.(check bool) "invisible to reads" true
    (Server.current_write w.servers.(0) uid = None);
  Alcotest.(check int) "held in mac slot" 1 (Server.maced_count w.servers.(0) uid);
  Alcotest.(check bool) "identical mac retry acked" true
    (direct_write w 0 mw ~await_ack:true = Some Payload.Ack);
  Alcotest.(check int) "held once" 1 (Server.maced_count w.servers.(0) uid);
  match batch_evidence_of ~key:(key_of "alice") [ mw ] with
  | [ upgraded ] ->
    (* Bad evidence cannot announce the write, and the hold survives so a
       corrected retry can. *)
    let bad =
      match upgraded.Payload.evidence with
      | Payload.Batch be ->
        Payload.Batch { be with Payload.root_sig = flip_byte be.Payload.root_sig 5 }
      | _ -> Alcotest.fail "expected batch evidence"
    in
    Alcotest.(check bool) "forged upgrade denied" true
      (send_upgrade w 0 mw bad = Some (Payload.Denied "upgrade rejected"));
    Alcotest.(check int) "still held" 1 (Server.maced_count w.servers.(0) uid);
    (* Upgrading under the wrong writer name is refused outright. *)
    Alcotest.(check bool) "writer mismatch denied" true
      (send_upgrade w 0 { mw with Payload.writer = "bob" }
         upgraded.Payload.evidence
      = Some (Payload.Denied "writer mismatch"));
    (* The genuine upgrade announces the write and drains the hold. *)
    Alcotest.(check bool) "upgrade acked" true
      (send_upgrade w 0 mw upgraded.Payload.evidence = Some Payload.Ack);
    Alcotest.(check int) "hold drained" 0 (Server.maced_count w.servers.(0) uid);
    (match Server.current_write w.servers.(0) uid with
    | Some stored ->
      Alcotest.(check string) "announced value" "v" stored.Payload.value;
      Alcotest.(check bool) "carries batch evidence" true
        (match stored.Payload.evidence with Payload.Batch _ -> true | _ -> false)
    | None -> Alcotest.fail "upgrade did not announce the write");
    (* Re-sending the upgrade after announcement is an idempotent Ack;
       an upgrade for a stamp this server never saw is not. *)
    Alcotest.(check bool) "re-upgrade idempotent" true
      (send_upgrade w 0 mw upgraded.Payload.evidence = Some Payload.Ack);
    let ghost =
      mac_write_exn w ~writer:"alice" ~item:"x" ~stamp:(Stamp.scalar 99) "ghost"
    in
    Alcotest.(check bool) "unknown stamp denied" true
      (send_upgrade w 0 ghost upgraded.Payload.evidence
      = Some (Payload.Denied "unknown write"))
  | _ -> Alcotest.fail "batch of one flushed to unexpected shape"

let test_mac_binding_rejects_replay () =
  let w = make_world () in
  let uid = Uid.make ~group:"g" ~item:"x" in
  (* A vector computed only for server 1 gives server 0 nothing to check. *)
  let only1 =
    match
      Signing.mac_write w.keyring ~writer:"alice" ~uid ~stamp:(Stamp.scalar 5)
        ~servers:[ 1 ] "v"
    with
    | Some m -> m
    | None -> Alcotest.fail "MAC keys missing"
  in
  Alcotest.(check bool) "missing tag rejected" true
    (direct_write w 0 only1 ~await_ack:true
    = Some (Payload.Denied "write rejected"));
  (* Relabelling server 1's tag as server 0's fails: the MAC body binds
     the destination server id. *)
  let relabeled =
    match only1.Payload.evidence with
    | Payload.Mac [ (1, tag) ] ->
      { only1 with Payload.evidence = Payload.Mac [ (0, tag) ] }
    | _ -> Alcotest.fail "unexpected vector shape"
  in
  Alcotest.(check bool) "relabelled tag rejected" true
    (direct_write w 0 relabeled ~await_ack:true
    = Some (Payload.Denied "write rejected"));
  (* Splicing a genuine vector onto a different write fails: the tags
     cover the write body, not just the stamp. *)
  let genuine = mac_write_exn w ~writer:"alice" ~item:"x" ~stamp:(Stamp.scalar 5) "v" in
  let other = mac_write_exn w ~writer:"alice" ~item:"x" ~stamp:(Stamp.scalar 6) "other" in
  let spliced = { other with Payload.evidence = genuine.Payload.evidence } in
  Alcotest.(check bool) "cross-write splice rejected" true
    (direct_write w 0 spliced ~await_ack:true
    = Some (Payload.Denied "write rejected"));
  Alcotest.(check int) "nothing held" 0 (Server.maced_count w.servers.(0) uid)

let test_mac_evidence_not_gossipable () =
  let w = make_world () in
  let uid = Uid.make ~group:"g" ~item:"x" in
  let mw = mac_write_exn w ~writer:"alice" ~item:"x" ~stamp:(Stamp.scalar 5) "v" in
  (match
     Server.handle w.servers.(0) ~now:0.0 ~from:9
       {
         Payload.token = None; epoch = 0;
         request = Payload.Gossip_push { writes = [ mw ]; have = []; epoch = None };
       }
   with
  | Some Payload.Ack -> ()
  | _ -> Alcotest.fail "gossip should be acked");
  (* MAC evidence is not third-party verifiable: a gossiped copy must be
     neither announced nor held. *)
  Alcotest.(check bool) "not announced" true
    (Server.current_write w.servers.(0) uid = None);
  Alcotest.(check int) "not held either" 0 (Server.maced_count w.servers.(0) uid)

let test_snapshot_preserves_maced () =
  let w = make_world () in
  let uid = Uid.make ~group:"g" ~item:"x" in
  let mw = mac_write_exn w ~writer:"alice" ~item:"x" ~stamp:(Stamp.scalar 5) "v" in
  ignore (direct_write w 0 mw ~await_ack:true);
  Alcotest.(check int) "held before snapshot" 1 (Server.maced_count w.servers.(0) uid);
  match Server.restore ~id:0 ~keyring:w.keyring ~n:4 ~b:1 (Server.snapshot w.servers.(0)) with
  | None -> Alcotest.fail "restore failed"
  | Some restored -> (
    Alcotest.(check int) "held after restart" 1 (Server.maced_count restored uid);
    Alcotest.(check bool) "still unannounced" true
      (Server.current_write restored uid = None);
    (* The escalation still lands on the restored server. *)
    match batch_evidence_of ~key:(key_of "alice") [ mw ] with
    | [ upgraded ] ->
      (match
         Server.handle restored ~now:0.0 ~from:(-1)
           {
             Payload.token = None; epoch = 0;
             request =
               Payload.Evidence_upgrade
                 {
                   uid;
                   stamp = mw.Payload.stamp;
                   writer = "alice";
                   evidence = upgraded.Payload.evidence;
                 };
           }
       with
      | Some Payload.Ack -> ()
      | _ -> Alcotest.fail "upgrade after restart failed");
      Alcotest.(check bool) "announced after restart + upgrade" true
        (Server.current_write restored uid <> None)
    | _ -> Alcotest.fail "batch shape")

let test_mac_fast_client_end_to_end () =
  let w = make_world () in
  let uid = Uid.make ~group:"g" ~item:"x" in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" ~cfg:mac_fast in
      ok (Client.write alice ~item:"x" "fast-v1");
      (* Quorum-acked but only as held MACs: no server announces it. *)
      Alcotest.(check bool) "unannounced before escalation" true
        (Array.for_all (fun s -> Server.current_write s uid = None) w.servers);
      Alcotest.(check bool) "held by the write set" true
        (Array.exists (fun s -> Server.maced_count s uid = 1) w.servers);
      (* Reads flush the escalation queue first: read-your-writes holds. *)
      Alcotest.(check string) "read-your-writes" "fast-v1"
        (ok (Client.read alice ~item:"x"));
      Alcotest.(check bool) "announced everywhere after flush" true
        (Array.for_all (fun s -> Server.current_write s uid <> None) w.servers);
      (* And the escalated form is ordinary verifiable evidence. *)
      let bob = connect w "bob" ~group:"g" in
      Alcotest.(check string) "other reader" "fast-v1"
        (ok (Client.read bob ~item:"x"));
      ok (Client.disconnect alice))

let test_write_batch_amortizes_signs () =
  let w = make_world () in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" ~cfg:merkle4 in
      let items =
        List.init 4 (fun i -> ("it" ^ string_of_int i, "v" ^ string_of_int i))
      in
      Metrics.reset ();
      List.iter (fun r -> ok r) (Client.write_batch alice items);
      let m = Metrics.read () in
      Alcotest.(check int) "one RSA sign for four writes" 1 m.Metrics.signs;
      List.iter
        (fun (item, v) ->
          Alcotest.(check string) ("read " ^ item) v (ok (Client.read alice ~item)))
        items;
      let uid = Uid.make ~group:"g" ~item:"it0" in
      let batch_stored s =
        match Server.current_write s uid with
        | Some stored -> (
          match stored.Payload.evidence with
          | Payload.Batch be -> be.Payload.size = 4
          | _ -> false)
        | None -> false
      in
      Alcotest.(check bool) "batch evidence stored" true
        (Array.exists batch_stored w.servers))

let test_downgrade_server_proven_faulty () =
  let w = make_world () in
  wrap w 0 Faults.Downgrade;
  let evidence = Fault_evidence.create ~servers:(List.init 4 Fun.id) ~b:1 in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" ~cfg:mac_fast in
      ok (Client.write alice ~item:"x" "secret-fast");
      (* Before escalation the write exists only as held MACs. The
         downgrading server leaks its held copy; honest servers stay
         silent. Leaked MAC evidence is proof of misbehaviour. *)
      let bob =
        connect w "bob" ~group:"g"
          ~cfg:(fun c -> { c with Client.evidence = Some evidence })
      in
      (match Client.read bob ~item:"x" with
      | Ok v -> Alcotest.failf "MAC-held value leaked as readable: %s" v
      | Error _ -> ());
      Alcotest.(check bool) "downgrade proven" true
        (Fault_evidence.is_proven evidence 0);
      (match Fault_evidence.proof_of evidence 0 with
      | Some Fault_evidence.Evidence_downgrade -> ()
      | _ -> Alcotest.fail "expected downgrade proof");
      (* Once escalated, the write reads fine from the honest servers. *)
      ok (Client.flush alice);
      Alcotest.(check string) "readable after escalation" "secret-fast"
        (ok (Client.read bob ~item:"x")))

let test_downgrade_strips_batch_proofs_detected () =
  let w = make_world () in
  wrap w 0 Faults.Downgrade;
  let evidence = Fault_evidence.create ~servers:(List.init 4 Fun.id) ~b:1 in
  in_world w (fun () ->
      let alice = connect w "alice" ~group:"g" ~cfg:merkle4 in
      List.iter (fun r -> ok r)
        (Client.write_batch alice [ ("x", "b1"); ("y", "b2") ]);
      let bob =
        connect w "bob" ~group:"g"
          ~cfg:(fun c -> { c with Client.evidence = Some evidence })
      in
      (* Server 0 serves the batch write with its inclusion proof
         mutilated; verification fails, the honest copy wins, and the
         stripping is proven. *)
      Alcotest.(check string) "honest copy wins" "b1"
        (ok (Client.read bob ~item:"x"));
      Alcotest.(check bool) "proof stripping proven" true
        (Fault_evidence.is_proven evidence 0))

let qsuite props = List.map QCheck_alcotest.to_alcotest props

let () =
  Alcotest.run "store"
    [
      ("uid", [ Alcotest.test_case "basics" `Quick test_uid ]);
      ( "stamp",
        [
          Alcotest.test_case "ordering" `Quick test_stamp_order;
          Alcotest.test_case "fork" `Quick test_stamp_fork;
          Alcotest.test_case "codec" `Quick test_stamp_codec;
        ] );
      ( "context",
        [
          Alcotest.test_case "basics" `Quick test_context_basics;
          Alcotest.test_case "merge/dominates" `Quick test_context_merge_dominates;
        ]
        @ qsuite
            [
              prop_merge_commutes; prop_merge_idempotent; prop_merge_dominates;
              prop_context_codec;
            ] );
      ( "quorums",
        [ Alcotest.test_case "formulas" `Quick test_quorum_formulas ]
        @ qsuite [ prop_context_overlap; prop_masking_larger ] );
      ("payload", [ Alcotest.test_case "roundtrips" `Quick test_payload_roundtrips ]);
      ("access", [ Alcotest.test_case "tokens" `Quick test_access_control ]);
      ("keyring", [ Alcotest.test_case "binding" `Quick test_keyring ]);
      ( "single-writer",
        [
          Alcotest.test_case "roundtrip" `Quick test_write_read_roundtrip;
          Alcotest.test_case "other reader" `Quick test_read_other_client;
          Alcotest.test_case "not found" `Quick test_read_not_found;
          Alcotest.test_case "overwrite" `Quick test_overwrite_returns_latest;
          Alcotest.test_case "mrc expansion" `Quick test_mrc_expansion_beats_stale_servers;
          Alcotest.test_case "session context" `Quick test_session_context_roundtrip;
          Alcotest.test_case "disconnected" `Quick test_disconnected_session_rejects_ops;
          Alcotest.test_case "reconstruction" `Quick test_context_reconstruction;
        ] );
      ( "causal",
        [
          Alcotest.test_case "cc pulls deps" `Quick test_cc_pulls_dependencies;
          Alcotest.test_case "mrc does not" `Quick test_mrc_does_not_pull_dependencies;
        ] );
      ( "byzantine",
        [
          Alcotest.test_case "corrupt value" `Quick test_corrupt_value_detected;
          Alcotest.test_case "equivocation" `Quick test_equivocating_meta_rejected;
          Alcotest.test_case "crash" `Quick test_crash_and_silent_servers;
          Alcotest.test_case "stale context" `Quick test_stale_server_context;
          Alcotest.test_case "forged gossip" `Quick test_forged_write_rejected_by_servers;
          Alcotest.test_case "unknown writer" `Quick test_unknown_writer_rejected;
        ] );
      ( "multi-writer",
        [
          Alcotest.test_case "two clients" `Quick test_multi_writer_two_clients;
          Alcotest.test_case "monotonic" `Quick test_multi_writer_monotonic_per_reader;
          Alcotest.test_case "fork detection" `Quick test_fork_detection;
          Alcotest.test_case "malicious context held" `Quick test_malicious_context_held;
          Alcotest.test_case "guard releases" `Quick test_guard_releases_when_deps_arrive;
          Alcotest.test_case "guard vs gossip order" `Quick test_guard_holds_out_of_order_gossip;
          Alcotest.test_case "eager report masked" `Quick test_eager_report_masked_by_vouching;
          Alcotest.test_case "log retention" `Quick test_log_keeps_overwritten_value;
        ] );
      ( "inline-read",
        [
          Alcotest.test_case "roundtrip" `Quick test_inline_read_roundtrip;
          Alcotest.test_case "one-round cost" `Quick test_inline_read_one_round_cost;
          Alcotest.test_case "fallback" `Quick test_inline_read_falls_back;
          Alcotest.test_case "corruption" `Quick test_inline_read_survives_corruption;
        ] );
      ( "jitter",
        [ Alcotest.test_case "privacy" `Quick test_timestamp_jitter ]
        @ qsuite [ test_jitter_monotonic ] );
      ( "log-erasure",
        [
          Alcotest.test_case "gossip evidence" `Quick test_log_erasure_via_gossip;
          Alcotest.test_case "no resurrection" `Quick test_erased_write_not_readmitted;
        ] );
      ("auth", [ Alcotest.test_case "end to end" `Quick test_auth_enforced ]);
      ( "dynamic-quorums",
        [
          Alcotest.test_case "evidence unit" `Quick test_evidence_unit;
          Alcotest.test_case "proves corruption" `Quick test_evidence_proves_corrupt_server;
          Alcotest.test_case "shrinks quorum" `Quick test_evidence_shrinks_context_quorum;
          Alcotest.test_case "clamped" `Quick test_evidence_never_goes_negative;
        ] );
      ( "dispersal",
        [
          Alcotest.test_case "roundtrip" `Quick test_dispersal_roundtrip;
          Alcotest.test_case "confidentiality" `Quick test_dispersal_confidentiality;
          Alcotest.test_case "crash tolerance" `Quick test_dispersal_crash_tolerance;
          Alcotest.test_case "corrupt fragment" `Quick test_dispersal_corrupt_fragment_rejected;
          Alcotest.test_case "not found / bounds" `Quick test_dispersal_not_found_and_bounds;
        ] );
      ( "coded-transport",
        [
          Alcotest.test_case "write/read roundtrip" `Quick test_coded_write_read_roundtrip;
          Alcotest.test_case "threshold gate" `Quick test_coded_threshold_gate;
          Alcotest.test_case "storage savings" `Quick test_coded_storage_savings;
          Alcotest.test_case "faulty holders" `Quick test_coded_read_survives_faulty_holders;
          Alcotest.test_case "not enough fragments" `Quick test_coded_not_enough_fragments;
          Alcotest.test_case "orphans invisible" `Quick test_coded_orphans_stay_invisible;
          Alcotest.test_case "fragment repair" `Quick test_coded_fragment_repair;
          Alcotest.test_case "snapshot keeps fragments" `Quick test_coded_snapshot_keeps_fragments;
        ]
        @ qsuite
            [
              prop_dispersal_plan_decode;
              prop_dispersal_refragment;
              prop_dispersal_corrupt_fragment_detected;
            ] );
      ( "gossip",
        [
          Alcotest.test_case "flood converges" `Quick test_gossip_flood_converges;
          Alcotest.test_case "exchange progress" `Quick test_gossip_exchange_progress;
        ] );
      ( "confidential",
        [
          Alcotest.test_case "roundtrip" `Quick test_confidential_roundtrip;
          Alcotest.test_case "wrong key" `Quick test_confidential_wrong_key;
          Alcotest.test_case "rotation" `Quick test_key_rotation;
        ] );
      ( "server",
        [
          Alcotest.test_case "duplicates" `Quick test_server_rejects_duplicates;
          Alcotest.test_case "stamp kinds" `Quick test_server_rejects_stamp_kind_mix;
          Alcotest.test_case "ctx ordering" `Quick test_server_ctx_seq_ordering;
          Alcotest.test_case "no quorum" `Quick test_client_no_quorum_when_majority_down;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
          Alcotest.test_case "save/load file" `Quick test_save_load_file;
          Alcotest.test_case "held writes survive" `Quick test_snapshot_preserves_held_writes;
          Alcotest.test_case "corruption rejected" `Quick
            test_snapshot_corruption_rejected;
        ] );
      ( "reconfiguration",
        [
          Alcotest.test_case "epoch chain + codec" `Quick test_epoch_chain_and_codec;
          Alcotest.test_case "stale-epoch gate" `Quick test_epoch_stale_gate;
          Alcotest.test_case "adoption rules" `Quick test_epoch_adoption_rules;
          Alcotest.test_case "no admin key refuses epochs" `Quick
            test_epoch_requires_admin_key;
          Alcotest.test_case "client ignores epochs without admin key" `Quick
            test_client_ignores_epoch_without_admin_key;
          Alcotest.test_case "drain denies writes" `Quick test_drain_denies_new_writes;
          Alcotest.test_case "drain restart keeps writes" `Quick
            test_drain_restart_preserves_writes;
        ] );
      ( "partition",
        [ Alcotest.test_case "split and heal" `Quick test_partition_and_heal ] );
      ( "group-keys",
        [
          Alcotest.test_case "eviction end-to-end" `Quick
            test_group_key_rotation_end_to_end;
        ] );
      ( "audit",
        [
          Alcotest.test_case "proofs" `Quick test_audit_proofs;
          Alcotest.test_case "divergence" `Quick test_audit_detects_divergence;
          Alcotest.test_case "localizes equivocation" `Quick
            test_audit_localizes_equivocation;
          Alcotest.test_case "rollback proven and repaired" `Quick
            test_evidence_and_audit_catch_rollback;
        ] );
      ( "costs",
        [
          Alcotest.test_case "context ops" `Quick test_costs_context_ops;
          Alcotest.test_case "data write" `Quick test_costs_data_write;
          Alcotest.test_case "data read" `Quick test_costs_data_read;
          Alcotest.test_case "multi-writer" `Quick test_costs_multi_writer;
        ] );
      ( "sigcache",
        [
          Alcotest.test_case "lru mechanics" `Quick test_sigcache_lru;
          Alcotest.test_case "hit consistency" `Quick test_sigcache_hit_consistency;
          Alcotest.test_case "forgery never cached valid" `Quick
            test_sigcache_forged_never_valid;
        ]
        @ qsuite [ prop_sigcache_bounded; prop_sigcache_verdict_stable ] );
      ( "fast-path",
        [
          Alcotest.test_case "mac hold + upgrade" `Quick
            test_mac_write_held_and_upgraded;
          Alcotest.test_case "mac binding vs replay" `Quick
            test_mac_binding_rejects_replay;
          Alcotest.test_case "mac not gossipable" `Quick
            test_mac_evidence_not_gossipable;
          Alcotest.test_case "maced survives snapshot" `Quick
            test_snapshot_preserves_maced;
          Alcotest.test_case "mac-fast end to end" `Quick
            test_mac_fast_client_end_to_end;
          Alcotest.test_case "batch amortizes signs" `Quick
            test_write_batch_amortizes_signs;
          Alcotest.test_case "downgrade proven" `Quick
            test_downgrade_server_proven_faulty;
          Alcotest.test_case "stripped proofs proven" `Quick
            test_downgrade_strips_batch_proofs_detected;
        ] );
      ("properties", qsuite [ prop_mrc_monotonic; prop_cc_no_overwritten_reads ]);
    ]
