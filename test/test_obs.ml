(* Observability-layer tests: histogram bucket semantics against a
   sorted-array oracle, span nesting (including across threads), the
   ring-buffer journal, exposition well-formedness, the metrics HTTP
   endpoint, and the Metrics reset split. *)

let bounds = Obs.Histo.bounds
let bucket_count = Obs.Histo.bucket_count

(* --- histograms --------------------------------------------------------- *)

(* Durations spanning the whole bucket range (and past it), negatives
   included to exercise the clamp. *)
let dur_gen =
  QCheck.map
    (fun (mant, exp) -> float_of_int mant *. (10.0 ** float_of_int exp))
    QCheck.(pair (int_range (-5) 999) (int_range 0 9))

let qcheck_percentile_oracle =
  (* The mli's exact promise: [percentile h p] equals the bound of the
     bucket holding the nearest-rank percentile of the sorted samples,
     or the true maximum when that lands in the overflow bucket. *)
  QCheck.Test.make ~name:"percentile matches sorted-array oracle" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 200) dur_gen) (int_range 1 100))
    (fun (samples, p) ->
      let h = Obs.Histo.create () in
      List.iter (Obs.Histo.observe h) samples;
      let clamped = List.map (fun v -> if v < 0.0 then 0.0 else v) samples in
      let sorted = List.sort compare clamped in
      let n = List.length sorted in
      let p = float_of_int p in
      let rank =
        max 1 (min n (int_of_float (ceil (p /. 100.0 *. float_of_int n))))
      in
      let v = List.nth sorted (rank - 1) in
      let expected =
        let i = Obs.Histo.bucket_of v in
        if i >= bucket_count then List.fold_left max 0.0 clamped
        else bounds.(i)
      in
      Obs.Histo.percentile h p = expected)

let qcheck_sum_count_max =
  QCheck.Test.make ~name:"sum/count/max track observations" ~count:300
    QCheck.(list_of_size Gen.(0 -- 200) dur_gen)
    (fun samples ->
      let h = Obs.Histo.create () in
      List.iter (Obs.Histo.observe h) samples;
      let clamped = List.map (fun v -> if v < 0.0 then 0.0 else v) samples in
      Obs.Histo.count h = List.length samples
      && Obs.Histo.sum h = List.fold_left ( +. ) 0.0 clamped
      && Obs.Histo.max_value h = List.fold_left max 0.0 clamped)

let test_bucket_boundaries () =
  (* le-semantics: a value exactly on a bound belongs to that bucket;
     one ulp-ish above it belongs to the next. *)
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "bound %d inclusive" i)
        i
        (Obs.Histo.bucket_of bounds.(i));
      let next = min (i + 1) bucket_count in
      Alcotest.(check int)
        (Printf.sprintf "just above bound %d" i)
        next
        (Obs.Histo.bucket_of (bounds.(i) *. 1.000001)))
    [ 0; 1; 17; 50; 98; bucket_count - 1 ];
  Alcotest.(check int) "zero in first bucket" 0 (Obs.Histo.bucket_of 0.0);
  Alcotest.(check int) "huge overflows" bucket_count
    (Obs.Histo.bucket_of 1e18);
  let h = Obs.Histo.create () in
  Alcotest.(check (float 0.0)) "empty percentile" 0.0
    (Obs.Histo.percentile h 50.0);
  Obs.Histo.observe h (-5.0);
  Alcotest.(check int) "negative clamps to first bucket" 1
    (Obs.Histo.counts h).(0);
  let cum = Obs.Histo.cumulative h in
  Alcotest.(check int) "cumulative ends at count" (Obs.Histo.count h)
    cum.(bucket_count)

let test_merge_adds_counters () =
  let a = Obs.Histo.create () and b = Obs.Histo.create () in
  List.iter (Obs.Histo.observe a) [ 150.0; 1e6; 3e9 ];
  List.iter (Obs.Histo.observe b) [ 150.0; 7e3 ];
  let m = Obs.Histo.merge a b in
  Alcotest.(check int) "merged count" 5 (Obs.Histo.count m);
  Alcotest.(check (float 0.0)) "merged sum"
    (Obs.Histo.sum a +. Obs.Histo.sum b)
    (Obs.Histo.sum m);
  Alcotest.(check (float 0.0)) "merged max" 3e9 (Obs.Histo.max_value m);
  let ca = Obs.Histo.counts a
  and cb = Obs.Histo.counts b
  and cm = Obs.Histo.counts m in
  Array.iteri
    (fun i n -> Alcotest.(check int) "merged bucket" (ca.(i) + cb.(i)) n)
    cm

(* --- spans --------------------------------------------------------------- *)

let with_tracing f =
  Obs.Span.reset_stats ();
  Obs.Span.set_journal_capacity 512;
  Obs.Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Span.set_enabled false) f

let test_span_nesting () =
  with_tracing @@ fun () ->
  Obs.Span.with_op "outer" (fun () ->
      Obs.Span.with_phase "p1" (fun () ->
          Obs.Span.with_phase "p2" (fun () -> ()));
      (* an op inside an op records as a phase of the outer one *)
      Obs.Span.with_op "inner" (fun () -> ());
      Obs.Span.annotate "note";
      Obs.Span.annotate_rpc [ ("h:1", 5); ("h:2", 6) ]);
  (match Obs.Span.recent ~limit:1 () with
  | [ c ] ->
    Alcotest.(check string) "op" "outer" c.Obs.Span.op;
    Alcotest.(check (list string))
      "phases, completion order"
      [ "p1/p2"; "p1"; "inner" ]
      (List.map (fun p -> p.Obs.Span.pname) c.Obs.Span.phases);
    Alcotest.(check (list string))
      "attrs render lazily"
      [ "note"; "rpc h:1#5 h:2#6" ]
      (List.map Obs.Span.attr_text c.Obs.Span.attrs)
  | _ -> Alcotest.fail "expected one journaled span");
  (match Obs.Span.phase_histo ~op:"outer" ~phase:"p1/p2" with
  | Some h -> Alcotest.(check int) "nested phase recorded" 1 (Obs.Histo.count h)
  | None -> Alcotest.fail "missing nested phase histogram");
  match Obs.Span.phase_histo ~op:"inner" ~phase:"total" with
  | Some _ -> Alcotest.fail "inner op must not open its own span"
  | None -> ()

let test_concurrent_spans () =
  (* Spans are per-thread: concurrent ops must neither mix phases nor
     lose counts. *)
  let threads = 8 and ops = 50 in
  with_tracing @@ fun () ->
  let worker k () =
    let op = "op" ^ string_of_int k in
    for _ = 1 to ops do
      Obs.Span.with_op op (fun () ->
          Obs.Span.with_phase "a" (fun () -> ());
          Obs.Span.with_phase "b" (fun () -> ()))
    done
  in
  let ths = List.init threads (fun k -> Thread.create (worker k) ()) in
  List.iter Thread.join ths;
  for k = 0 to threads - 1 do
    let op = "op" ^ string_of_int k in
    List.iter
      (fun phase ->
        match Obs.Span.phase_histo ~op ~phase with
        | Some h ->
          Alcotest.(check int) (op ^ "/" ^ phase) ops (Obs.Histo.count h)
        | None -> Alcotest.fail ("missing histogram for " ^ op))
      [ "total"; "a"; "b" ]
  done;
  List.iter
    (fun c ->
      Alcotest.(check (list string))
        "no cross-thread phases" [ "a"; "b" ]
        (List.map (fun p -> p.Obs.Span.pname) c.Obs.Span.phases))
    (Obs.Span.recent ())

let test_journal_wraparound () =
  with_tracing @@ fun () ->
  Obs.Span.set_journal_capacity 8;
  for i = 0 to 19 do
    Obs.Span.with_op ("w" ^ string_of_int i) (fun () -> ())
  done;
  let spans = Obs.Span.recent () in
  Alcotest.(check int) "ring keeps capacity" 8 (List.length spans);
  Alcotest.(check (list string))
    "newest first, oldest overwritten"
    (List.init 8 (fun i -> "w" ^ string_of_int (19 - i)))
    (List.map (fun c -> c.Obs.Span.op) spans);
  let ids = List.map (fun c -> c.Obs.Span.id) spans in
  Alcotest.(check bool) "ids strictly decreasing" true
    (List.sort (fun a b -> compare b a) ids = ids);
  Alcotest.(check int) "limit respected" 3
    (List.length (Obs.Span.recent ~limit:3 ()));
  Obs.Span.reset_journal ();
  Alcotest.(check int) "reset empties" 0 (List.length (Obs.Span.recent ()));
  Obs.Span.set_journal_capacity 256

let test_disabled_is_inert () =
  Obs.Span.reset_stats ();
  Obs.Span.reset_journal ();
  Obs.Span.set_enabled false;
  Obs.Span.with_op "ghost" (fun () ->
      Obs.Span.with_phase "p" (fun () -> ());
      Obs.Span.annotate "x");
  Alcotest.(check int) "nothing journaled" 0
    (List.length (Obs.Span.recent ()));
  Alcotest.(check int) "nothing recorded" 0
    (List.length (Obs.Span.phase_stats ()));
  Alcotest.(check bool) "no current id" true (Obs.Span.current_id () = None)

(* --- exposition ---------------------------------------------------------- *)

let find_lines pred text =
  List.filter pred (String.split_on_char '\n' text)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let test_exposition_well_formed () =
  let h = Obs.Histo.create () in
  List.iter (Obs.Histo.observe h) [ 150.0; 3e4; 3e4; 7e8 ];
  let text =
    Obs.Expo.render
      [
        Obs.Expo.counter ~name:"t_ops_total" ~help:"ops" 42.0;
        Obs.Expo.gauge ~name:"t_depth" ~help:"queue \"depth\"\nnow"
          ~labels:[ ("peer", "a\"b") ]
          3.0;
        Obs.Expo.family ~name:"t_latency_seconds" ~help:"lat"
          (Obs.Expo.Histogram [ ([ ("op", "read") ], h) ]);
      ]
  in
  Alcotest.(check bool) "content type versioned" true
    (starts_with "text/plain" Obs.Expo.content_type);
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("has " ^ needle) true
        (find_lines (starts_with needle) text <> []))
    [
      "# TYPE t_ops_total counter";
      "# TYPE t_depth gauge";
      "# TYPE t_latency_seconds histogram";
      "t_ops_total 42";
    ];
  (* HELP escapes newlines (not quotes — the 0.0.4 rule); label values
     escape both *)
  Alcotest.(check bool) "help escaped" true
    (find_lines (fun l -> l = "# HELP t_depth queue \"depth\"\\nnow") text
    <> []);
  Alcotest.(check bool) "label escaped" true
    (find_lines (starts_with "t_depth{peer=\"a\\\"b\"} 3") text <> []);
  (* histogram: cumulative monotone buckets, +Inf equals _count *)
  let buckets = find_lines (starts_with "t_latency_seconds_bucket") text in
  Alcotest.(check bool) "has buckets" true (buckets <> []);
  let value_of line =
    let i = String.rindex line ' ' in
    float_of_string (String.sub line (i + 1) (String.length line - i - 1))
  in
  let values = List.map value_of buckets in
  Alcotest.(check bool) "buckets cumulative" true
    (List.sort compare values = values);
  let inf =
    match
      find_lines (fun l -> starts_with "t_latency_seconds_bucket" l
                           && String.length l > 0
                           &&
                           let re = Str.regexp_string "le=\"+Inf\"" in
                           (try ignore (Str.search_forward re l 0); true
                            with Not_found -> false))
        text
    with
    | [ l ] -> value_of l
    | _ -> Alcotest.fail "expected exactly one +Inf bucket"
  in
  (match find_lines (starts_with "t_latency_seconds_count") text with
  | [ l ] -> Alcotest.(check (float 0.0)) "+Inf equals count" (value_of l) inf
  | _ -> Alcotest.fail "expected one _count line");
  match find_lines (starts_with "t_latency_seconds_sum") text with
  | [ l ] ->
    (* sums render in seconds *)
    Alcotest.(check (float 1e-9)) "sum in seconds" (Obs.Histo.sum h /. 1e9)
      (value_of l)
  | _ -> Alcotest.fail "expected one _sum line"

let test_metrics_endpoint_roundtrip () =
  let hits = ref 0 in
  let http =
    Tcpnet.Metrics_http.start ~port:0
      ~routes:
        [
          ( "/metrics",
            fun _ ->
              incr hits;
              (Obs.Expo.content_type, "fresh " ^ string_of_int !hits) );
          ("/echo", fun q -> ("text/plain", "q=" ^ q));
          ("/boom", fun _ -> failwith "render exploded");
        ]
      ()
  in
  let port = Tcpnet.Metrics_http.port http in
  Fun.protect ~finally:(fun () -> Tcpnet.Metrics_http.stop http) @@ fun () ->
  (match Tcpnet.Metrics_http.get ~port ~path:"/metrics" () with
  | Ok body -> Alcotest.(check string) "scrape" "fresh 1" body
  | Error e -> Alcotest.fail ("scrape failed: " ^ e));
  (match Tcpnet.Metrics_http.get ~port ~path:"/metrics" () with
  | Ok body -> Alcotest.(check string) "thunks rerun" "fresh 2" body
  | Error _ -> Alcotest.fail "second scrape failed");
  (match Tcpnet.Metrics_http.get ~port ~path:"/nope" () with
  | Ok _ -> Alcotest.fail "404 expected"
  | Error _ -> ());
  (match Tcpnet.Metrics_http.get ~port ~path:"/echo?id=ab12&x=1" () with
  | Ok body -> Alcotest.(check string) "query passed to route" "q=id=ab12&x=1" body
  | Error e -> Alcotest.fail ("query scrape failed: " ^ e));
  (match Tcpnet.Metrics_http.get ~port ~path:"/echo" () with
  | Ok body -> Alcotest.(check string) "absent query is empty" "q=" body
  | Error e -> Alcotest.fail ("bare scrape failed: " ^ e));
  match Tcpnet.Metrics_http.get ~port ~path:"/boom" () with
  | Ok _ -> Alcotest.fail "route failure must not 200"
  | Error _ -> ()

(* --- Metrics reset split ------------------------------------------------- *)

let test_reset_keeps_gauges () =
  Store.Metrics.reset ();
  Store.Metrics.reset_gauges ();
  Store.Metrics.incr_rpc ();
  Store.Metrics.record_rpc_ns 5e6;
  Store.Metrics.note_inflight 7;
  Store.Metrics.note_endpoint_health
    {
      Store.Metrics.endpoint = "h:1";
      connections = 1;
      consecutive_failures = 2;
      last_error = Some "x";
      down_until = 0.0;
    };
  Obs.Histo.observe (Store.Metrics.endpoint_rpc_histo "h:1") 5e6;
  Store.Metrics.reset ();
  Alcotest.(check int) "counters cleared" 0 (Store.Metrics.read ()).rpcs;
  Alcotest.(check int) "rpc histogram cleared" 0
    (Store.Metrics.rpc_latency_stats ()).rpc_count;
  Alcotest.(check int) "health survives reset" 1
    (List.length (Store.Metrics.endpoint_health ()));
  Alcotest.(check int) "endpoint latency survives reset" 1
    (List.length (Store.Metrics.endpoint_rpc_histos ()));
  Alcotest.(check int) "hwm survives reset" 7
    (Store.Metrics.inflight_high_water ());
  Store.Metrics.reset_gauges ();
  Alcotest.(check int) "health cleared by reset_gauges" 0
    (List.length (Store.Metrics.endpoint_health ()));
  Alcotest.(check int) "endpoint latency cleared by reset_gauges" 0
    (List.length (Store.Metrics.endpoint_rpc_histos ()));
  Alcotest.(check int) "hwm cleared by reset_gauges" 0
    (Store.Metrics.inflight_high_water ())

(* Regression: Metrics.reset must also clear the per-phase span
   histograms, or a benchmark's second mode inherits the first mode's
   latency samples. *)
let test_reset_clears_span_histos () =
  with_tracing @@ fun () ->
  Obs.Span.with_op "bench_write" (fun () ->
      Obs.Span.with_phase "sign" (fun () -> ()));
  Alcotest.(check bool) "phase recorded" true (Obs.Span.phase_stats () <> []);
  Store.Metrics.reset ();
  Alcotest.(check int) "span histograms cleared" 0
    (List.length (Obs.Span.phase_stats ()));
  match Obs.Span.phase_histo ~op:"bench_write" ~phase:"sign" with
  | Some _ -> Alcotest.fail "stale phase histogram survived reset"
  | None -> ()

let test_sigcache_exposition () =
  Store.Signing.reset_sigcache ();
  (* The snapshot counters (reset-scoped) and the cache-lifetime families
     must both render. *)
  let snap = Obs.Expo.render (Store.Metrics.families ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("snapshot has " ^ needle) true
        (find_lines (starts_with needle) snap <> []))
    [
      "securestore_sigcache_hits_total";
      "securestore_sigcache_misses_total";
    ];
  let life = Obs.Expo.render (Store.Signing.sigcache_families ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("lifetime has " ^ needle) true
        (find_lines (starts_with needle) life <> []))
    [
      "securestore_sigcache_lifetime_hits_total 0";
      "securestore_sigcache_lifetime_misses_total 0";
      "securestore_sigcache_entries 0";
      "securestore_sigcache_capacity 4096";
    ];
  (* Lifetime counters track the live cache, not the snapshot deltas:
     they survive Metrics.reset. *)
  let keyring = Store.Keyring.create () in
  let key =
    Crypto.Rsa.generate ~bits:512 (Crypto.Prng.create ~seed:"obs-sigcache")
  in
  Store.Keyring.register keyring "alice" key.Crypto.Rsa.public;
  let w =
    Store.Signing.sign_write ~key ~writer:"alice"
      ~uid:(Store.Uid.make ~group:"g" ~item:"x")
      ~stamp:(Store.Stamp.scalar 1) "v"
  in
  Alcotest.(check bool) "cold verify" true (Store.Signing.verify_write keyring w);
  Alcotest.(check bool) "warm verify" true (Store.Signing.verify_write keyring w);
  Store.Metrics.reset ();
  let life = Obs.Expo.render (Store.Signing.sigcache_families ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("after reset: " ^ needle) true
        (find_lines (starts_with needle) life <> []))
    [
      "securestore_sigcache_lifetime_hits_total 1";
      "securestore_sigcache_lifetime_misses_total 1";
      "securestore_sigcache_entries 1";
    ]

(* --- the shared JSON escaper against its reader oracle ------------------- *)

let qcheck_jsonx_escape_roundtrip =
  QCheck.Test.make ~name:"Jsonx.escape round-trips through the reader"
    ~count:500
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      Obs.Jsonx.parse ("\"" ^ Obs.Jsonx.escape s ^ "\"")
      = Some (Obs.Jsonx.Str s))

let qcheck_jsonx_hex_roundtrip =
  QCheck.Test.make ~name:"hex codec round-trips raw bytes" ~count:500
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s -> Obs.Jsonx.of_hex (Obs.Jsonx.to_hex s) = Some s)

let test_jsonx_reader_strictness () =
  let p = Obs.Jsonx.parse in
  Alcotest.(check bool) "trailing garbage" true (p "{} x" = None);
  Alcotest.(check bool) "bad escape" true (p "\"\\q\"" = None);
  Alcotest.(check bool) "raw control char" true (p "\"\x01\"" = None);
  Alcotest.(check bool) "unterminated string" true (p "\"abc" = None);
  Alcotest.(check bool) "nesting capped" true
    (p (String.make 100 '[' ^ String.make 100 ']') = None);
  match p "{\"a\": [1, true, null, \"s\"], \"b\": -2.5e1}" with
  | None -> Alcotest.fail "well-formed document rejected"
  | Some v ->
    Alcotest.(check bool) "array decoded" true
      (Option.bind (Obs.Jsonx.member "a" v) Obs.Jsonx.arr_of
      = Some Obs.Jsonx.[ Num 1.0; Bool true; Null; Str "s" ]);
    Alcotest.(check (option (float 1e-9))) "number decoded" (Some (-25.0))
      (Option.bind (Obs.Jsonx.member "b" v) Obs.Jsonx.num_of)

(* --- flight recorder ----------------------------------------------------- *)

let tid i =
  String.init Obs.Span.trace_bytes (fun j -> Char.chr (((17 * i) + j) land 0xff))

let with_flight f =
  Obs.Span.reset_stats ();
  Obs.Span.reset_journal ();
  Obs.Span.reset_flight ();
  Obs.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_enabled false;
      Obs.Span.reset_flight ())
    f

(* A remote span closes on its own thread — per-thread span state means a
   same-thread with_op would fold into the live root as a phase. *)
let remote_span ~ctx op =
  let th = Thread.create (fun () -> Obs.Span.with_op ~ctx op Fun.id) () in
  Thread.join th

let test_flight_promotion () =
  with_flight @@ fun () ->
  (* A child closing before its root parks in pending; the root's close
     promotes the whole trace into the sampled ring. *)
  let t = tid 1 in
  let root_span = ref 0 in
  Obs.Span.with_op "client_op" (fun () ->
      Obs.Span.set_trace ~flags:Obs.Span.flag_sampled t;
      match Obs.Span.current_ctx () with
      | Some c ->
        root_span := c.Obs.Span.span;
        remote_span ~ctx:c "server_request"
      | None -> Alcotest.fail "no ctx on a traced root");
  let sampled, forced, occupancy = Obs.Span.flight_stats () in
  Alcotest.(check int) "one sampled promotion" 1 sampled;
  Alcotest.(check int) "no forced promotion" 0 forced;
  Alcotest.(check int) "one trace held" 1 occupancy;
  let spans = Obs.Span.flight_lookup ~trace:t in
  Alcotest.(check (list string))
    "both spans held"
    [ "client_op"; "server_request" ]
    (List.sort compare (List.map (fun c -> c.Obs.Span.op) spans));
  (match
     List.find_opt (fun c -> c.Obs.Span.op = "server_request") spans
   with
  | Some c ->
    Alcotest.(check int) "server span's parent is the client span"
      !root_span c.Obs.Span.parent
  | None -> Alcotest.fail "missing server span");
  (* An unsampled, unforced trace is dropped at root close. *)
  let u = tid 2 in
  Obs.Span.with_op "unsampled" (fun () -> Obs.Span.set_trace ~flags:0 u);
  Alcotest.(check int) "unsampled not held" 0
    (List.length (Obs.Span.flight_lookup ~trace:u))

let test_flight_forced_and_pin () =
  with_flight @@ fun () ->
  Fun.protect
    ~finally:(fun () -> Obs.Span.set_flight_capacity ~ring:32 ())
  @@ fun () ->
  (* force() lands the promotion in the pinned list, not the ring. *)
  let t = tid 3 in
  Obs.Span.with_op "retrying_op" (fun () ->
      Obs.Span.set_trace ~flags:Obs.Span.flag_sampled t;
      Obs.Span.force ());
  let _, forced, _ = Obs.Span.flight_stats () in
  Alcotest.(check int) "forced promotion" 1 forced;
  Alcotest.(check bool) "pin finds a pinned trace" true
    (Obs.Span.pin ~trace:t);
  (* pin moves a ring entry to the pinned list, surviving a ring wipe. *)
  let s = tid 4 in
  Obs.Span.with_op "sampled_op" (fun () ->
      Obs.Span.set_trace ~flags:Obs.Span.flag_sampled s);
  Alcotest.(check bool) "pin promotes from the ring" true
    (Obs.Span.pin ~trace:s);
  Obs.Span.set_flight_capacity ~ring:1 ();
  Alcotest.(check bool) "pinned survives ring resize" true
    (Obs.Span.flight_lookup ~trace:s <> []);
  Alcotest.(check bool) "unknown trace is gone" true
    (not (Obs.Span.pin ~trace:(tid 9)));
  (* A pending trace — root still in flight — pins as forced too. *)
  let p = tid 5 in
  remote_span
    ~ctx:{ Obs.Span.trace = p; span = 77; flags = Obs.Span.flag_sampled }
    "late_child";
  Alcotest.(check bool) "pin promotes from pending" true
    (Obs.Span.pin ~trace:p);
  let _, forced, _ = Obs.Span.flight_stats () in
  Alcotest.(check int) "every pin counted forced" 3 forced

let test_flight_eviction_promotes () =
  with_flight @@ fun () ->
  Obs.Span.set_flight_capacity ~pending:2 ();
  Fun.protect
    ~finally:(fun () -> Obs.Span.set_flight_capacity ~pending:128 ())
  @@ fun () ->
  (* Three traces stuck waiting for their roots: inserting the third
     evicts the first — promoted into the ring, not silently dropped. *)
  List.iter
    (fun i ->
      remote_span
        ~ctx:
          { Obs.Span.trace = tid (10 + i); span = 9;
            flags = Obs.Span.flag_sampled }
        "orphan_child")
    [ 0; 1; 2 ];
  let sampled, _, occupancy = Obs.Span.flight_stats () in
  Alcotest.(check int) "evictee promoted to the ring" 1 sampled;
  Alcotest.(check int) "all three still held" 3 occupancy;
  Alcotest.(check bool) "evicted trace still resolvable" true
    (Obs.Span.flight_lookup ~trace:(tid 10) <> [])

let test_trace_assembly_json () =
  with_flight @@ fun () ->
  Obs.Span.set_node "unit-node";
  Fun.protect ~finally:(fun () -> Obs.Span.set_node "") @@ fun () ->
  let t = tid 6 in
  Obs.Span.with_op "op_a" (fun () ->
      Obs.Span.set_trace ~flags:Obs.Span.flag_sampled t;
      Obs.Span.with_phase "ph" (fun () -> ()));
  let hex = Obs.Jsonx.to_hex t in
  (match Obs.Jsonx.parse (Obs.Span.trace_json ~id:hex ()) with
  | None -> Alcotest.fail "trace_json is not valid JSON"
  | Some v -> (
    Alcotest.(check (option string)) "trace member" (Some hex)
      (Option.bind (Obs.Jsonx.member "trace" v) Obs.Jsonx.str_of);
    Alcotest.(check (option string)) "node member" (Some "unit-node")
      (Option.bind (Obs.Jsonx.member "node" v) Obs.Jsonx.str_of);
    match Option.bind (Obs.Jsonx.member "spans" v) Obs.Jsonx.arr_of with
    | Some [ sp ] ->
      Alcotest.(check (option string)) "span op" (Some "op_a")
        (Option.bind (Obs.Jsonx.member "op" sp) Obs.Jsonx.str_of)
    | _ -> Alcotest.fail "expected exactly one assembled span"));
  match Obs.Jsonx.parse (Obs.Span.trace_json ~id:"not-hex" ()) with
  | Some v ->
    Alcotest.(check bool) "malformed id yields an error doc" true
      (Obs.Jsonx.member "error" v <> None)
  | None -> Alcotest.fail "error doc must be valid JSON"

let test_trace_gauges_exposition () =
  with_flight @@ fun () ->
  Obs.Span.with_op "sampled" (fun () ->
      Obs.Span.set_trace ~flags:Obs.Span.flag_sampled (tid 7));
  Obs.Span.with_op "forced" (fun () ->
      Obs.Span.set_trace ~flags:Obs.Span.flag_sampled (tid 8);
      Obs.Span.force ());
  let text = Obs.Expo.render (Obs.Span.trace_families ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("has " ^ needle) true
        (find_lines (starts_with needle) text <> []))
    [
      "# TYPE securestore_traces_sampled_total counter";
      "# TYPE securestore_traces_forced_total counter";
      "# TYPE securestore_flight_recorder_occupancy gauge";
      "securestore_traces_sampled_total 1";
      "securestore_traces_forced_total 1";
      "securestore_flight_recorder_occupancy 2";
    ]

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "histo",
        [
          q qcheck_percentile_oracle;
          q qcheck_sum_count_max;
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "merge adds counters" `Quick
            test_merge_adds_counters;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting and attrs" `Quick test_span_nesting;
          Alcotest.test_case "concurrent threads" `Quick test_concurrent_spans;
          Alcotest.test_case "journal wraparound" `Quick
            test_journal_wraparound;
          Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
        ] );
      ( "jsonx",
        [
          q qcheck_jsonx_escape_roundtrip;
          q qcheck_jsonx_hex_roundtrip;
          Alcotest.test_case "reader strictness" `Quick
            test_jsonx_reader_strictness;
        ] );
      ( "flight",
        [
          Alcotest.test_case "promotion at root close" `Quick
            test_flight_promotion;
          Alcotest.test_case "force and pin" `Quick test_flight_forced_and_pin;
          Alcotest.test_case "eviction promotes" `Quick
            test_flight_eviction_promotes;
          Alcotest.test_case "trace assembly json" `Quick
            test_trace_assembly_json;
          Alcotest.test_case "trace gauges exposition" `Quick
            test_trace_gauges_exposition;
        ] );
      ( "expo",
        [
          Alcotest.test_case "well-formed exposition" `Quick
            test_exposition_well_formed;
          Alcotest.test_case "metrics endpoint roundtrip" `Quick
            test_metrics_endpoint_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "reset keeps operator gauges" `Quick
            test_reset_keeps_gauges;
          Alcotest.test_case "reset clears span histograms" `Quick
            test_reset_clears_span_histos;
          Alcotest.test_case "sigcache exposition" `Quick
            test_sigcache_exposition;
        ] );
    ]
