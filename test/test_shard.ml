(* Keyspace sharding: the shard table, the client-side router (Direct
   world and live TCP), the sharded frame sub-protocol, and the
   open-loop workload planner. *)

let key_of name =
  Crypto.Rsa.generate ~bits:512 (Crypto.Prng.create ~seed:("shard-" ^ name))

(* ---- Shardmap ----------------------------------------------------- *)

let sample_groups = List.init 200 (fun i -> Printf.sprintf "grp%d" i)

let test_shardmap_deterministic () =
  let a = Store.Shardmap.make ~seed:"alpha" ~shards:4 () in
  let b = Store.Shardmap.make ~seed:"alpha" ~shards:4 () in
  List.iter
    (fun g ->
      Alcotest.(check int)
        ("same seed, same owner: " ^ g)
        (Store.Shardmap.shard_of_group a g)
        (Store.Shardmap.shard_of_group b g))
    sample_groups;
  let c = Store.Shardmap.make ~seed:"beta" ~shards:4 () in
  Alcotest.(check bool) "different seed shuffles ownership" true
    (List.exists
       (fun g ->
         Store.Shardmap.shard_of_group a g <> Store.Shardmap.shard_of_group c g)
       sample_groups)

let test_shardmap_range () =
  let t = Store.Shardmap.make ~seed:"range" ~shards:5 () in
  List.iter
    (fun g ->
      let s = Store.Shardmap.shard_of_group t g in
      if s < 0 || s >= 5 then Alcotest.failf "shard %d out of range for %s" s g)
    sample_groups;
  let one = Store.Shardmap.make ~seed:"one" ~shards:1 () in
  List.iter
    (fun g ->
      Alcotest.(check int) "single shard owns all" 0
        (Store.Shardmap.shard_of_group one g))
    sample_groups

let test_shardmap_spread () =
  let t = Store.Shardmap.make ~seed:"spread" ~shards:4 () in
  let owned = Store.Shardmap.spread t ~groups:sample_groups in
  Alcotest.(check int) "spread sums to the sample" (List.length sample_groups)
    (Array.fold_left ( + ) 0 owned);
  Array.iteri
    (fun s c ->
      if c = 0 then
        Alcotest.failf "shard %d owns nothing over %d groups" s
          (List.length sample_groups))
    owned

let test_shardmap_signature () =
  let admin = key_of "admin" and other = key_of "other" in
  let t = Store.Shardmap.make ~seed:"signed" ~shards:3 () in
  Alcotest.(check bool) "unsigned never verifies" false
    (Store.Shardmap.verify t admin.Crypto.Rsa.public);
  let signed = Store.Shardmap.sign t admin in
  Alcotest.(check bool) "signed verifies" true
    (Store.Shardmap.verify signed admin.Crypto.Rsa.public);
  Alcotest.(check bool) "wrong admin rejected" false
    (Store.Shardmap.verify signed other.Crypto.Rsa.public);
  (* A doctored table (same signature, different shape) must not verify:
     the digest covers (version, seed, shards, vnodes). *)
  let doctored = Store.Shardmap.make ~version:2 ~seed:"signed" ~shards:3 () in
  Alcotest.(check bool) "digest binds the version" false
    (String.equal (Store.Shardmap.digest t) (Store.Shardmap.digest doctored))

let test_shardmap_codec () =
  let admin = key_of "admin" in
  let t =
    Store.Shardmap.sign
      (Store.Shardmap.make ~version:7 ~vnodes:32 ~seed:"codec" ~shards:6 ())
      admin
  in
  match Store.Shardmap.of_string (Store.Shardmap.to_string t) with
  | None -> Alcotest.fail "decode failed"
  | Some t' ->
    Alcotest.(check int) "version" t.Store.Shardmap.version t'.Store.Shardmap.version;
    Alcotest.(check string) "seed" t.Store.Shardmap.seed t'.Store.Shardmap.seed;
    Alcotest.(check int) "shards" t.Store.Shardmap.shards t'.Store.Shardmap.shards;
    Alcotest.(check int) "vnodes" t.Store.Shardmap.vnodes t'.Store.Shardmap.vnodes;
    Alcotest.(check bool) "signature survives" true
      (Store.Shardmap.verify t' admin.Crypto.Rsa.public);
    List.iter
      (fun g ->
        Alcotest.(check int) "ring rebuilt identically"
          (Store.Shardmap.shard_of_group t g)
          (Store.Shardmap.shard_of_group t' g))
      sample_groups;
    Alcotest.(check bool) "garbage rejected" true
      (Store.Shardmap.of_string "not a shard table" = None)

(* ---- Sharded frames and prebuilt buffers -------------------------- *)

let strip_len b = Bytes.sub_string b 4 (Bytes.length b - 4)

let test_frame_sharded_roundtrip () =
  let buf = Tcpnet.Frame.prebuilt_call ~shard:9 "payload!" in
  (match Tcpnet.Frame.parse_request (strip_len buf) with
  | Some (Tcpnet.Frame.Sharded_call { id; shard; payload }) ->
    Alcotest.(check int) "fresh id is 0" 0 id;
    Alcotest.(check int) "shard" 9 shard;
    Alcotest.(check string) "payload" "payload!" payload
  | _ -> Alcotest.fail "expected Sharded_call");
  Tcpnet.Frame.set_prebuilt_id buf 123456;
  (match Tcpnet.Frame.parse_request (strip_len buf) with
  | Some (Tcpnet.Frame.Sharded_call { id; shard; payload }) ->
    Alcotest.(check int) "patched id" 123456 id;
    Alcotest.(check int) "shard untouched" 9 shard;
    Alcotest.(check string) "payload untouched" "payload!" payload
  | _ -> Alcotest.fail "expected Sharded_call after patch");
  (* Unsharded prebuilt stays on the 0x02 pipelined tag. *)
  let plain = Tcpnet.Frame.prebuilt_call "p" in
  (match Tcpnet.Frame.parse_request (strip_len plain) with
  | Some (Tcpnet.Frame.Call { id = 0; payload = "p" }) -> ()
  | _ -> Alcotest.fail "expected plain Call");
  match Tcpnet.Frame.parse_request (Tcpnet.Frame.encode_oneway ~shard:3 "gossip") with
  | Some (Tcpnet.Frame.Sharded_oneway { shard = 3; payload = "gossip" }) -> ()
  | _ -> Alcotest.fail "expected Sharded_oneway"

let test_frame_shard_bounds () =
  Alcotest.check_raises "shard over 16 bits"
    (Invalid_argument "Frame: shard id out of range") (fun () ->
      ignore (Tcpnet.Frame.prebuilt_call ~shard:(Tcpnet.Frame.max_shard + 1) "x"));
  (* Truncated sharded frames parse to None, not garbage. *)
  Alcotest.(check bool) "truncated sharded call" true
    (Tcpnet.Frame.parse_request "\x04\x00\x00\x00\x01\x00" = None);
  Alcotest.(check bool) "truncated sharded oneway" true
    (Tcpnet.Frame.parse_request "\x05\x00" = None)

(* ---- Router over the Direct world --------------------------------- *)

let sharded_world ~shards ~n ~b ~clients =
  let keyring = Store.Keyring.create () in
  List.iter
    (fun c -> Store.Keyring.register keyring c (key_of c).Crypto.Rsa.public)
    clients;
  let servers =
    Array.init (shards * n) (fun gid ->
        Store.Server.create ~id:gid ~keyring ~n ~b ())
  in
  let handlers dst ~from req =
    if dst >= 0 && dst < Array.length servers then
      Store.Server.handler servers.(dst) ~now:0.0 ~from req
    else None
  in
  (keyring, handlers)

let config_of_shard ~n ~b shard =
  {
    (Store.Client.default_config ~n ~b) with
    Store.Client.servers = Store.Router.shard_servers ~n shard;
  }

let test_router_shard_servers () =
  Alcotest.(check (list int)) "replica set of shard 2" [ 8; 9; 10; 11 ]
    (Store.Router.shard_servers ~n:4 2);
  Alcotest.(check (list int)) "shard 0 is the legacy set" [ 0; 1; 2; 3 ]
    (Store.Router.shard_servers ~n:4 0)

let test_router_routing_total () =
  let n = 4 and b = 1 in
  let table = Store.Shardmap.make ~seed:"routing" ~shards:3 () in
  let keyring, handlers =
    sharded_world ~shards:3 ~n ~b ~clients:[ "alice" ]
  in
  Sim.Direct.run ~handlers (fun () ->
      let r =
        Store.Router.create ~table ~uid:"alice" ~key:(key_of "alice") ~keyring
          ~config_of:(config_of_shard ~n ~b) ()
      in
      for i = 0 to 999 do
        let uid =
          Store.Uid.make
            ~group:(Printf.sprintf "g%d" (i mod 50))
            ~item:(Printf.sprintf "k%d" i)
        in
        let s = Store.Router.shard_of r uid in
        Alcotest.(check int)
          ("router agrees with the table: " ^ Store.Uid.to_string uid)
          (Store.Shardmap.shard_of_uid table uid)
          s;
        if s < 0 || s >= 3 then Alcotest.failf "uid %d routed to shard %d" i s
      done)

let test_router_read_your_writes () =
  let n = 4 and b = 1 in
  let shards = 2 in
  let table = Store.Shardmap.make ~seed:"ryw" ~shards () in
  let keyring, handlers =
    sharded_world ~shards ~n ~b ~clients:[ "alice"; "bob" ]
  in
  let groups = List.init 6 (fun g -> Printf.sprintf "ryw%d" g) in
  (* The sample must exercise both shards or the test proves nothing. *)
  List.iter
    (fun s ->
      if
        not
          (List.exists (fun g -> Store.Shardmap.shard_of_group table g = s) groups)
      then Alcotest.failf "no sample group on shard %d" s)
    (List.init shards Fun.id);
  Sim.Direct.run ~handlers (fun () ->
      let r =
        Store.Router.create ~table ~uid:"alice" ~key:(key_of "alice") ~keyring
          ~config_of:(config_of_shard ~n ~b) ()
      in
      (* Interleave writes across shard boundaries, reading back after
         each round: one shard's sessions must never disturb another's. *)
      for i = 1 to 4 do
        List.iter
          (fun g ->
            let uid = Store.Uid.make ~group:g ~item:"doc" in
            match
              Store.Router.write r ~uid (Printf.sprintf "%s@%d" g i)
            with
            | Ok () -> ()
            | Error e ->
              Alcotest.failf "write %s: %s" g (Store.Client.error_to_string e))
          groups;
        List.iter
          (fun g ->
            let uid = Store.Uid.make ~group:g ~item:"doc" in
            match Store.Router.read r ~uid with
            | Ok v ->
              Alcotest.(check string) ("read-your-writes on " ^ g)
                (Printf.sprintf "%s@%d" g i)
                v
            | Error e ->
              Alcotest.failf "read %s: %s" g (Store.Client.error_to_string e))
          groups
      done;
      Alcotest.(check int) "one session per touched group"
        (List.length groups)
        (List.length (Store.Router.sessions r));
      (match Store.Router.disconnect r with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "disconnect: %s" (Store.Client.error_to_string e));
      (* A second principal sees the writes through its own router. *)
      let rb =
        Store.Router.create ~table ~uid:"bob" ~key:(key_of "bob") ~keyring
          ~config_of:(config_of_shard ~n ~b) ()
      in
      List.iter
        (fun g ->
          let uid = Store.Uid.make ~group:g ~item:"doc" in
          match Store.Router.read rb ~uid with
          | Ok v ->
            Alcotest.(check string) ("cross-client read of " ^ g)
              (Printf.sprintf "%s@4" g) v
          | Error e ->
            Alcotest.failf "bob read %s: %s" g (Store.Client.error_to_string e))
        groups;
      ignore (Store.Router.disconnect rb))

let test_router_table_signature () =
  let n = 4 and b = 1 in
  let admin = key_of "admin" and rogue = key_of "rogue" in
  let table = Store.Shardmap.make ~seed:"sig" ~shards:2 () in
  let keyring, handlers = sharded_world ~shards:2 ~n ~b ~clients:[ "alice" ] in
  Sim.Direct.run ~handlers (fun () ->
      let make tbl =
        ignore
          (Store.Router.create ~admin:admin.Crypto.Rsa.public ~table:tbl
             ~uid:"alice" ~key:(key_of "alice") ~keyring
             ~config_of:(config_of_shard ~n ~b) ())
      in
      Alcotest.check_raises "unsigned table rejected"
        (Invalid_argument "Router.create: shard table signature invalid")
        (fun () -> make table);
      Alcotest.check_raises "rogue-signed table rejected"
        (Invalid_argument "Router.create: shard table signature invalid")
        (fun () -> make (Store.Shardmap.sign table rogue));
      (* The admin-signed table is accepted. *)
      make (Store.Shardmap.sign table admin))

(* The oracle must hold over a router-driven multi-shard history —
   globally and per shard (every session serves one group, so events
   partition cleanly by the shard of the uids they touch). *)
let test_router_oracle () =
  let n = 4 and b = 1 in
  let shards = 2 in
  let table = Store.Shardmap.make ~seed:"oracle" ~shards () in
  let keyring, handlers =
    sharded_world ~shards ~n ~b ~clients:[ "alice"; "bob" ]
  in
  let groups = List.init 8 (fun g -> Printf.sprintf "og%d" g) in
  let hist = Check.History.create () in
  Check.History.recording hist (fun () ->
      Sim.Direct.run ~handlers (fun () ->
          let ra =
            Store.Router.create ~table ~uid:"alice" ~key:(key_of "alice")
              ~keyring ~config_of:(config_of_shard ~n ~b) ()
          in
          for i = 0 to 3 do
            List.iter
              (fun g ->
                let uid =
                  Store.Uid.make ~group:g ~item:(Printf.sprintf "k%d" (i mod 2))
                in
                (match
                   Store.Router.write ra ~uid (Printf.sprintf "%s=%d" g i)
                 with
                | Ok () -> ()
                | Error e ->
                  Alcotest.failf "write: %s" (Store.Client.error_to_string e));
                if i land 1 = 1 then
                  match Store.Router.read ra ~uid with
                  | Ok _ -> ()
                  | Error e ->
                    Alcotest.failf "read: %s" (Store.Client.error_to_string e))
              groups
          done;
          ignore (Store.Router.disconnect ra);
          let rb =
            Store.Router.create ~table ~uid:"bob" ~key:(key_of "bob") ~keyring
              ~config_of:(config_of_shard ~n ~b) ()
          in
          List.iter
            (fun g ->
              for k = 0 to 1 do
                let uid = Store.Uid.make ~group:g ~item:(Printf.sprintf "k%d" k) in
                match Store.Router.read rb ~uid with
                | Ok _ -> ()
                | Error e ->
                  Alcotest.failf "bob read: %s" (Store.Client.error_to_string e)
              done)
            groups;
          ignore (Store.Router.disconnect rb)));
  let events = Check.History.events hist in
  Alcotest.(check (list string)) "no violations (combined)" []
    (List.map Check.Oracle.violation_to_string (Check.Oracle.check events));
  let session_shard = Hashtbl.create 32 in
  List.iter
    (fun (e : Store.Trace.event) ->
      match e.Store.Trace.kind with
      | Store.Trace.Write { uid; _ } | Store.Trace.Read { uid } ->
        if not (Hashtbl.mem session_shard (e.Store.Trace.client, e.Store.Trace.session))
        then
          Hashtbl.replace session_shard
            (e.Store.Trace.client, e.Store.Trace.session)
            (Store.Shardmap.shard_of_uid table uid)
      | _ -> ())
    events;
  List.iter
    (fun s ->
      let evs =
        List.filter
          (fun (e : Store.Trace.event) ->
            Hashtbl.find_opt session_shard
              (e.Store.Trace.client, e.Store.Trace.session)
            = Some s)
          events
      in
      Alcotest.(check bool)
        (Printf.sprintf "shard %d history non-empty" s)
        true (evs <> []);
      Alcotest.(check (list string))
        (Printf.sprintf "no violations (shard %d)" s)
        []
        (List.map Check.Oracle.violation_to_string (Check.Oracle.check evs)))
    (List.init shards Fun.id)

(* ---- Router over live TCP: multi-shard hosting end to end --------- *)

let test_router_live_sharded () =
  let n = 4 and b = 1 in
  let shards = 2 in
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" (key_of "alice").Crypto.Rsa.public;
  let servers =
    Array.init (shards * n) (fun gid ->
        Store.Server.create ~id:gid ~keyring ~n ~b ())
  in
  (* Four hosts, each serving one replica of *both* shards on one port
     (the multi-shard hosting path: tagged 0x04 frames dispatch by
     shard id to per-shard server state). *)
  let hosts =
    Array.init n (fun r ->
        let specs =
          List.init shards (fun s ->
              {
                Tcpnet.Server_host.shard = s;
                server = servers.((s * n) + r);
                behavior = Store.Faults.Honest;
                peers = [];
              })
        in
        Tcpnet.Server_host.start_sharded ~shards:specs ~port:0 ())
  in
  Array.iter
    (fun h ->
      Alcotest.(check (list int)) "host serves both shards" [ 0; 1 ]
        (Tcpnet.Server_host.hosted_shards h))
    hosts;
  let eps = Array.map (fun h -> ("127.0.0.1", Tcpnet.Server_host.port h)) hosts in
  let endpoints gid =
    if gid >= 0 && gid < shards * n then Some eps.(gid mod n) else None
  in
  let table = Store.Shardmap.make ~seed:"live" ~shards () in
  let groups = List.init 5 (fun g -> Printf.sprintf "lv%d" g) in
  Fun.protect
    ~finally:(fun () -> Array.iter Tcpnet.Server_host.stop hosts)
    (fun () ->
      Tcpnet.Live.run ~endpoints
        ~shard_of:(fun node -> Some (node / n))
        (fun () ->
          let r =
            Store.Router.create ~table ~uid:"alice" ~key:(key_of "alice")
              ~keyring ~config_of:(config_of_shard ~n ~b) ()
          in
          List.iter
            (fun g ->
              let uid = Store.Uid.make ~group:g ~item:"x" in
              (match Store.Router.write r ~uid ("live-" ^ g) with
              | Ok () -> ()
              | Error e ->
                Alcotest.failf "live write %s: %s" g
                  (Store.Client.error_to_string e));
              match Store.Router.read r ~uid with
              | Ok v -> Alcotest.(check string) ("live " ^ g) ("live-" ^ g) v
              | Error e ->
                Alcotest.failf "live read %s: %s" g
                  (Store.Client.error_to_string e))
            groups;
          ignore (Store.Router.disconnect r)))

(* ---- Open-loop workload planner ----------------------------------- *)

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf draw stays in [0, keys)" ~count:500
    QCheck.(pair (int_bound 999) (int_bound 9))
    (fun (u_mil, k) ->
      let keys = k + 1 in
      let z = Workload.Openloop.zipf ~keys ~theta:0.9 in
      let r = Workload.Openloop.draw z ~u:(float_of_int u_mil /. 1000.0) in
      r >= 0 && r < keys)

let test_zipf_skew () =
  let keys = 1000 in
  let z = Workload.Openloop.zipf ~keys ~theta:0.9 in
  let prng = Crypto.Prng.create ~seed:"zipf-skew" in
  let hits = Array.make keys 0 in
  for _ = 1 to 20_000 do
    let r = Workload.Openloop.draw z ~u:(Crypto.Prng.float_unit prng) in
    hits.(r) <- hits.(r) + 1
  done;
  let tail = Array.fold_left ( + ) 0 (Array.sub hits (keys / 2) (keys / 2)) in
  let top10 = Array.fold_left ( + ) 0 (Array.sub hits 0 10) in
  (* Uniform would put ~20 of the 20k draws on each rank; theta = 0.9
     puts ~5% on rank 0 and ~16% on the top ten. *)
  Alcotest.(check bool) "rank 0 is hot (>10x uniform)" true (hits.(0) > 200);
  Alcotest.(check bool) "top 10 ranks outweigh the whole tail half" true
    (top10 > tail)

let test_plan_deterministic_and_owned () =
  let mk () =
    Workload.Openloop.plan ~seed:"plan" ~keys:5000 ~theta:0.9 ~groups:16
      ~rate:200.0 ~duration:1.0 ~write_ratio:0.5 ~owned_groups:[ 1; 3; 5 ]
  in
  let a = mk () and b = mk () in
  Alcotest.(check int) "planned ops = rate * duration" 200 (Array.length a);
  Alcotest.(check bool) "plans are reproducible" true (a = b);
  Array.iteri
    (fun i (op : Workload.Openloop.op) ->
      let expect = float_of_int i /. 200.0 in
      if Float.abs (op.at -. expect) > 1e-9 then
        Alcotest.failf "op %d due at %f, want %f" i op.at expect;
      match op.kind with
      | Workload.Openloop.Write ->
        let g = Store.Uid.group op.uid in
        let gid = int_of_string (String.sub g 1 (String.length g - 1)) in
        if not (List.mem gid [ 1; 3; 5 ]) then
          Alcotest.failf "write %d landed in unowned group %d" i gid
      | Workload.Openloop.Read -> ())
    a

let test_summarize () =
  let s = Workload.Openloop.summarize [| 3.0; 1.0; 2.0; 4.0 |] in
  Alcotest.(check int) "count" 4 s.Workload.Openloop.count;
  Alcotest.(check (float 1e-9)) "p50 nearest-rank" 2.0 s.Workload.Openloop.p50_ns;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Workload.Openloop.max_ns;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Workload.Openloop.mean_ns;
  let z = Workload.Openloop.summarize [||] in
  Alcotest.(check int) "empty count" 0 z.Workload.Openloop.count

(* ---- Uid separator edge cases (qcheck round-trip) ----------------- *)

let test_uid_separators () =
  let none s =
    Alcotest.(check bool) ("rejects " ^ s) true (Store.Uid.of_string s = None)
  in
  List.iter none [ ""; "/"; "a/"; "/b"; "a//b"; "a/b/c"; "ab"; "//" ];
  match Store.Uid.of_string "a/b" with
  | Some u ->
    Alcotest.(check string) "group" "a" (Store.Uid.group u);
    Alcotest.(check string) "item" "b" (Store.Uid.item u)
  | None -> Alcotest.fail "a/b must parse"

let uid_part =
  QCheck.(
    map
      (fun s ->
        let s = if s = "" then "x" else s in
        String.map (fun c -> if c = '/' then '_' else c) s)
      small_string)

let prop_uid_roundtrip =
  QCheck.Test.make ~name:"uid to_string/of_string round-trip" ~count:500
    QCheck.(pair uid_part uid_part)
    (fun (g, i) ->
      let u = Store.Uid.make ~group:g ~item:i in
      match Store.Uid.of_string (Store.Uid.to_string u) with
      | Some u' -> Store.Uid.equal u u'
      | None -> false)

let prop_uid_parse_sound =
  QCheck.Test.make ~name:"of_string accepts exactly one clean separator"
    ~count:1000 QCheck.small_string (fun s ->
      match Store.Uid.of_string s with
      | Some u -> String.equal (Store.Uid.to_string u) s
      | None ->
        (* Rejection is only for strings no valid uid prints to. *)
        (match String.index_opt s '/' with
        | None -> true
        | Some i ->
          i = 0
          || i = String.length s - 1
          || String.contains_from s (i + 1) '/'))

let () =
  Alcotest.run "shard"
    [
      ( "shardmap",
        [
          Alcotest.test_case "deterministic" `Quick test_shardmap_deterministic;
          Alcotest.test_case "range" `Quick test_shardmap_range;
          Alcotest.test_case "spread" `Quick test_shardmap_spread;
          Alcotest.test_case "signature" `Quick test_shardmap_signature;
          Alcotest.test_case "codec" `Quick test_shardmap_codec;
        ] );
      ( "frames",
        [
          Alcotest.test_case "sharded roundtrip" `Quick
            test_frame_sharded_roundtrip;
          Alcotest.test_case "bounds" `Quick test_frame_shard_bounds;
        ] );
      ( "router",
        [
          Alcotest.test_case "shard servers" `Quick test_router_shard_servers;
          Alcotest.test_case "routing total" `Quick test_router_routing_total;
          Alcotest.test_case "read-your-writes" `Quick
            test_router_read_your_writes;
          Alcotest.test_case "table signature" `Quick
            test_router_table_signature;
          Alcotest.test_case "oracle clean" `Quick test_router_oracle;
          Alcotest.test_case "live sharded" `Slow test_router_live_sharded;
        ] );
      ( "openloop",
        [
          QCheck_alcotest.to_alcotest prop_zipf_in_range;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "plan" `Quick test_plan_deterministic_and_owned;
          Alcotest.test_case "summarize" `Quick test_summarize;
        ] );
      ( "uid",
        [
          Alcotest.test_case "separator edges" `Quick test_uid_separators;
          QCheck_alcotest.to_alcotest prop_uid_roundtrip;
          QCheck_alcotest.to_alcotest prop_uid_parse_sound;
        ] );
    ]
