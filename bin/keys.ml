(* The demo key-universe convention now lives in {!Demokeys} so the
   bench's multi-process workers derive the same universe as the
   servers; this alias keeps the binaries' call sites short. *)
include Demokeys
