(* A secure store server daemon.

     dune exec bin/store_server.exe -- --id 0 --port 7000 --n 4 --b 1 \
       --peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003

   Peers are the *other* servers' endpoints, used for gossip pushes. *)

open Cmdliner

let run id port n b clients guard log_depth peers gossip_period snapshot
    snapshot_period stats_period metrics_port =
  let keyring = Keys.keyring (Keys.split_commas clients) in
  let config =
    {
      (Store.Server.default_config ~n ~b) with
      Store.Server.malicious_client_guard = guard;
      log_depth;
    }
  in
  (* A long-term store survives restarts: reload the last snapshot if one
     exists, and persist periodically. *)
  let server =
    match snapshot with
    | Some path when Sys.file_exists path -> (
      match Store.Server.load_file ~config ~id ~keyring ~n ~b ~path () with
      | Some server ->
        Printf.printf "restored state from %s (%d items)\n%!" path
          (Store.Server.item_count server);
        server
      | None ->
        Printf.eprintf "warning: snapshot %s unreadable; starting fresh\n" path;
        Store.Server.create ~config ~id ~keyring ~n ~b ())
    | Some _ | None -> Store.Server.create ~config ~id ~keyring ~n ~b ()
  in
  (match snapshot with
  | Some path ->
    ignore
      (Thread.create
         (fun () ->
           while true do
             Thread.delay snapshot_period;
             try Store.Server.save_file server ~path
             with Sys_error msg -> Printf.eprintf "snapshot failed: %s\n" msg
           done)
         ())
  | None -> ());
  let gossip =
    match peers with
    | "" -> None
    | peers -> (
      match Keys.parse_endpoints peers with
      | Some peers -> Some { Tcpnet.Server_host.peers; period = gossip_period }
      | None -> failwith "bad --peers (expected host:port,host:port,...)")
  in
  let host = Tcpnet.Server_host.start ?gossip ~server ~port () in
  Printf.printf "secure store server %d/%d (b=%d, guard=%b) listening on 127.0.0.1:%d\n%!"
    id n b guard
    (Tcpnet.Server_host.port host);
  (* Exposition endpoint: /metrics (Prometheus text format) and /spans
     (the recent-span journal as JSON). Serving it turns tracing on —
     the span phases are the point of scraping. *)
  (match metrics_port with
  | None -> ()
  | Some mport ->
    Obs.Span.set_enabled true;
    let routes =
      [
        ( "/metrics",
          fun () ->
            ( Obs.Expo.content_type,
              Obs.Expo.render
                (Store.Metrics.families ()
                @ Store.Signing.sigcache_families ()
                @ [ Obs.Span.phase_family () ]) ) );
        ( "/spans",
          fun () -> ("application/json", Obs.Span.spans_json ~limit:64 ()) );
      ]
    in
    let http = Tcpnet.Metrics_http.start ~port:mport ~routes () in
    Printf.printf "metrics on http://127.0.0.1:%d/metrics\n%!"
      (Tcpnet.Metrics_http.port http));
  (if stats_period > 0.0 then
     let pp_peers now fmt hs =
       List.iter
         (fun h ->
           Format.fprintf fmt "@,stats: peer %a"
             (Store.Metrics.pp_endpoint_health ~now) h)
         hs
     in
     ignore
       (Thread.create
          (fun () ->
            while true do
              Thread.delay stats_period;
              let m = Store.Metrics.read () in
              let rpc = Store.Metrics.rpc_latency_stats () in
              let now = Unix.gettimeofday () in
              let ms ns = ns /. 1e6 in
              (* One Format call for the whole report: a multi-server
                 launch script interleaves stdout per line, and a report
                 torn across servers is worse than none. *)
              Format.printf
                "@[<v>stats: %d items, %d gossip queued | %d msgs, %d \
                 server verifies (%d RSA) | transport: %d connects, %d \
                 reuses, %d reconnects, %d in-flight peak | rpc: %d \
                 rounds, p50=%.2fms p95=%.2fms p99=%.2fms%a@]@."
                (Store.Server.item_count server)
                (Store.Server.gossip_pending server)
                m.Store.Metrics.messages m.Store.Metrics.server_verifies
                (Store.Metrics.rsa_verifies m)
                m.Store.Metrics.tcp_connects m.Store.Metrics.tcp_reuses
                m.Store.Metrics.tcp_reconnects
                (Store.Metrics.inflight_high_water ())
                rpc.Store.Metrics.rpc_count
                (ms rpc.Store.Metrics.p50_ns)
                (ms rpc.Store.Metrics.p95_ns)
                (ms rpc.Store.Metrics.p99_ns)
                (pp_peers now)
                (Store.Metrics.endpoint_health ())
            done)
          ()));
  (* Serve until killed. Relocking a held mutex raises EDEADLK on
     OCaml 5, so park on a condition nobody ever signals instead. *)
  let forever = Mutex.create () and never = Condition.create () in
  Mutex.lock forever;
  while true do
    Condition.wait never forever
  done

let cmd =
  let id = Arg.(value & opt int 0 & info [ "id" ] ~doc:"Server id (0..n-1).") in
  let port = Arg.(value & opt int 7000 & info [ "port" ] ~doc:"Listen port (0 = ephemeral).") in
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Total number of servers.") in
  let b = Arg.(value & opt int 1 & info [ "b" ] ~doc:"Fault bound.") in
  let clients =
    Arg.(value & opt string "alice,bob,carol"
         & info [ "clients" ] ~doc:"Comma-separated known client names (shared key universe).")
  in
  let guard =
    Arg.(value & flag & info [ "guard" ] ~doc:"Enable the malicious-client guard (section 5.3).")
  in
  let log_depth =
    Arg.(value & opt int 4 & info [ "log-depth" ] ~doc:"Overwritten values retained per item.")
  in
  let peers =
    Arg.(value & opt string "" & info [ "peers" ] ~doc:"Peer endpoints for gossip (host:port,...).")
  in
  let gossip_period =
    Arg.(value & opt float 1.0 & info [ "gossip-period" ] ~doc:"Seconds between gossip pushes.")
  in
  let snapshot =
    Arg.(value & opt (some string) None
         & info [ "snapshot" ] ~doc:"Persist state to this file and reload it on start.")
  in
  let snapshot_period =
    Arg.(value & opt float 10.0 & info [ "snapshot-period" ] ~doc:"Seconds between snapshots.")
  in
  let stats_period =
    Arg.(value & opt float 0.0
         & info [ "stats-period" ]
             ~doc:"Seconds between metrics reports on stdout (0 = off).")
  in
  let metrics_port =
    Arg.(value & opt (some int) None
         & info [ "metrics-port" ]
             ~doc:"Serve /metrics (Prometheus text format) and /spans \
                   (JSON span journal) on this port; enables tracing. \
                   0 = ephemeral.")
  in
  Cmd.v
    (Cmd.info "store_server" ~doc:"Secure distributed store server (DSN 2001 reproduction)")
    Term.(const run $ id $ port $ n $ b $ clients $ guard $ log_depth $ peers $ gossip_period
          $ snapshot $ snapshot_period $ stats_period $ metrics_port)

let () = exit (Cmd.eval cmd)
