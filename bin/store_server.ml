(* A secure store server daemon.

     dune exec bin/store_server.exe -- --id 0 --port 7000 --n 4 --b 1 \
       --peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003

   Peers are the *other* servers' endpoints, used for gossip pushes.

   With --shards the process hosts one replica of *several* shard
   groups behind the same port (frame tags 0x04/0x05 carry the shard
   id; see Tcpnet.Server_host.start_sharded):

     dune exec bin/store_server.exe -- --id 2 --shards 0,4 \
       --shards-total 8 --port 7002 --peers ...

   hosts replica 2 of shards 0 and 4. Node ids are global — shard s's
   replica r is node s*n + r — so every signature and MAC names exactly
   one replica of one shard; --shards-total sizes the MAC universe. *)

open Cmdliner

let run id port n b clients guard log_depth peers gossip_period snapshot
    snapshot_period stats_period metrics_port shards shards_total drain
    epoch_admin =
  let shard_ids =
    match shards with
    | "" -> []
    | s -> (
      match List.map int_of_string_opt (Keys.split_commas s) with
      | exception _ -> failwith "bad --shards"
      | ids ->
        List.map
          (function Some i when i >= 0 -> i | _ -> failwith "bad --shards")
          ids)
  in
  let total_shards =
    List.fold_left (fun acc s -> max acc (s + 1)) (max 1 shards_total) shard_ids
  in
  (* Every replica of every shard shares one flat MAC universe so a
     Mac_fast client can authenticate to any of the total*n global ids. *)
  let keyring =
    Keys.keyring ~mac_servers:(total_shards * n) (Keys.split_commas clients)
  in
  let config =
    {
      (Store.Server.default_config ~n ~b) with
      Store.Server.malicious_client_guard = guard;
      log_depth;
      (* Without this key the server refuses every announced epoch
         transition — membership changes need an administrator. *)
      epoch_admin =
        Option.map
          (fun name -> (Keys.keypair name).Crypto.Rsa.public)
          epoch_admin;
    }
  in
  (* A long-term store survives restarts: reload the last snapshot if one
     exists, and persist periodically. *)
  let make_server ~gid ~snapshot =
    match snapshot with
    | Some path when Sys.file_exists path -> (
      match
        Store.Server.load_result ~config ~id:gid ~keyring ~n ~b ~path ()
      with
      | Ok server ->
        let epoch =
          match Store.Server.epoch_version server with
          | 0 -> ""
          | v -> Printf.sprintf ", epoch v%d" v
        in
        Printf.printf "restored state from %s (%d items%s)\n%!" path
          (Store.Server.item_count server)
          epoch;
        server
      | Error msg ->
        (* Truncated or tampered snapshots are detected (v3 carries an
           integrity trailer) and refused loudly, not half-loaded. *)
        Printf.eprintf "warning: snapshot %s: %s; starting fresh\n%!" path msg;
        Store.Server.create ~config ~id:gid ~keyring ~n ~b ())
    | Some _ | None -> Store.Server.create ~config ~id:gid ~keyring ~n ~b ()
  in
  let snapshot_for shard =
    match (snapshot, shard) with
    | None, _ -> None
    | Some path, None -> Some path
    | Some path, Some s -> Some (Printf.sprintf "%s.s%d" path s)
  in
  (* (shard, server, snapshot path) per hosted shard; the legacy
     unsharded daemon is the one-entry untagged case. *)
  let hosted =
    match shard_ids with
    | [] -> [ (None, make_server ~gid:id ~snapshot:(snapshot_for None), snapshot_for None) ]
    | ids ->
      List.map
        (fun s ->
          let snap = snapshot_for (Some s) in
          (Some s, make_server ~gid:((s * n) + id) ~snapshot:snap, snap))
        ids
  in
  (if snapshot <> None then
     ignore
       (Thread.create
          (fun () ->
            while true do
              Thread.delay snapshot_period;
              List.iter
                (fun (_, server, snap) ->
                  match snap with
                  | Some path -> (
                    try Store.Server.save_file server ~path
                    with Sys_error msg ->
                      Printf.eprintf "snapshot failed: %s\n" msg)
                  | None -> ())
                hosted
            done)
          ()));
  let peer_list =
    match peers with
    | "" -> []
    | peers -> (
      match Keys.parse_endpoints peers with
      | Some peers -> peers
      | None -> failwith "bad --peers (expected host:port,host:port,...)")
  in
  let host =
    match hosted with
    | [ (None, server, _) ] ->
      let gossip =
        match peer_list with
        | [] -> None
        | peers -> Some { Tcpnet.Server_host.peers; period = gossip_period }
      in
      Tcpnet.Server_host.start ?gossip ~server ~port ()
    | hosted ->
      let specs =
        List.map
          (fun (shard, server, _) ->
            {
              Tcpnet.Server_host.shard = Option.get shard;
              server;
              behavior = Store.Faults.Honest;
              peers = peer_list;
            })
          hosted
      in
      Tcpnet.Server_host.start_sharded ~gossip_period ~shards:specs ~port ()
  in
  (match shard_ids with
  | [] ->
    Printf.printf
      "secure store server %d/%d (b=%d, guard=%b) listening on 127.0.0.1:%d\n%!"
      id n b guard
      (Tcpnet.Server_host.port host)
  | ids ->
    Printf.printf
      "secure store server replica %d of shards [%s] (n=%d, b=%d, guard=%b) \
       listening on 127.0.0.1:%d\n%!"
      id
      (String.concat "," (List.map string_of_int ids))
      n b guard
      (Tcpnet.Server_host.port host));
  (* Exposition endpoint: /metrics (Prometheus text format), /spans
     (the recent-span journal as JSON) and /trace?id=<hex> (one stitched
     trace from the flight recorder). Serving it turns tracing on — the
     span phases are the point of scraping. *)
  (match metrics_port with
  | None -> ()
  | Some mport ->
    Obs.Span.set_enabled true;
    Obs.Span.set_node (Printf.sprintf "server-%d:%d" id port);
    let trace_id_of_query q =
      (* accept "id=<hex>" anywhere in the query string *)
      List.find_map
        (fun kv ->
          match String.index_opt kv '=' with
          | Some i when String.sub kv 0 i = "id" ->
            Some (String.sub kv (i + 1) (String.length kv - i - 1))
          | _ -> None)
        (String.split_on_char '&' q)
    in
    let routes =
      [
        ( "/metrics",
          fun _ ->
            ( Obs.Expo.content_type,
              Obs.Expo.render
                (Store.Metrics.families ()
                @ Store.Signing.sigcache_families ()
                @ Obs.Span.trace_families ()
                @ [ Obs.Span.phase_family () ]) ) );
        ( "/spans",
          fun _ -> ("application/json", Obs.Span.spans_json ~limit:64 ()) );
        ( "/trace",
          fun query ->
            let id = Option.value ~default:"" (trace_id_of_query query) in
            ("application/json", Obs.Span.trace_json ~id ()) );
      ]
    in
    let http = Tcpnet.Metrics_http.start ~port:mport ~routes () in
    Printf.printf "metrics on http://127.0.0.1:%d/metrics\n%!"
      (Tcpnet.Metrics_http.port http));
  (if stats_period > 0.0 then
     let pp_peers now fmt hs =
       List.iter
         (fun h ->
           Format.fprintf fmt "@,stats: peer %a"
             (Store.Metrics.pp_endpoint_health ~now) h)
         hs
     in
     (* One line per hosted shard: items, dispatched requests, handling
        p50 — a hot shard stands out without scraping /metrics. *)
     let pp_shards fmt () =
       let reqs = Store.Metrics.shard_request_stats () in
       List.iter
         (fun (shard, server, _) ->
           let wire = match shard with Some s -> s | None -> 0 in
           let count, p50ms =
             match List.assoc_opt wire reqs with
             | Some c ->
               ( c.Store.Metrics.shard_requests,
                 Obs.Histo.percentile c.Store.Metrics.shard_request_latency 50.0
                 /. 1e6 )
             | None -> (0, 0.0)
           in
           Format.fprintf fmt "@,stats: shard %d: %d items, %d gossip queued, \
                               %d reqs, p50=%.2fms"
             wire
             (Store.Server.item_count server)
             (Store.Server.gossip_pending server)
             count p50ms)
         hosted
     in
     let total_items () =
       List.fold_left
         (fun acc (_, server, _) -> acc + Store.Server.item_count server)
         0 hosted
     in
     let total_gossip () =
       List.fold_left
         (fun acc (_, server, _) -> acc + Store.Server.gossip_pending server)
         0 hosted
     in
     ignore
       (Thread.create
          (fun () ->
            while true do
              Thread.delay stats_period;
              let m = Store.Metrics.read () in
              let rpc = Store.Metrics.rpc_latency_stats () in
              let now = Unix.gettimeofday () in
              let ms ns = ns /. 1e6 in
              (* One Format call for the whole report: a multi-server
                 launch script interleaves stdout per line, and a report
                 torn across servers is worse than none. *)
              let tr_sampled, tr_forced, tr_held = Obs.Span.flight_stats () in
              Format.printf
                "@[<v>stats: %d items, %d gossip queued | %d msgs, %d \
                 server verifies (%d RSA) | transport: %d connects, %d \
                 reuses, %d reconnects, %d in-flight peak | rpc: %d \
                 rounds, p50=%.2fms p95=%.2fms p99=%.2fms | traces: %d \
                 sampled, %d forced, %d held%a%a@]@."
                (total_items ())
                (total_gossip ())
                m.Store.Metrics.messages m.Store.Metrics.server_verifies
                (Store.Metrics.rsa_verifies m)
                m.Store.Metrics.tcp_connects m.Store.Metrics.tcp_reuses
                m.Store.Metrics.tcp_reconnects
                (Store.Metrics.inflight_high_water ())
                rpc.Store.Metrics.rpc_count
                (ms rpc.Store.Metrics.p50_ns)
                (ms rpc.Store.Metrics.p95_ns)
                (ms rpc.Store.Metrics.p99_ns)
                tr_sampled tr_forced tr_held
                (pp_peers now)
                (Store.Metrics.endpoint_health ())
                pp_shards ()
            done)
          ()));
  (* Graceful departure: deny new client writes, push the remaining
     gossip backlog (including MAC-held writes already escalated) to
     peers, snapshot every hosted shard, exit. Run for --drain and on
     SIGTERM/SIGINT, so a rolling replacement loses no accepted write:
     what this server held is either at its peers or in the snapshot. *)
  let save_all () =
    List.iter
      (fun (_, server, snap) ->
        match snap with
        | Some path -> (
          try Store.Server.save_file server ~path
          with Sys_error msg -> Printf.eprintf "snapshot failed: %s\n%!" msg)
        | None -> ())
      hosted
  in
  let shutdown () =
    Printf.printf "draining: flushing gossip backlog to %d peer(s)\n%!"
      (List.length peer_list);
    Tcpnet.Server_host.drain host;
    save_all ();
    Tcpnet.Server_host.stop host;
    Printf.printf "drained; exiting\n%!";
    exit 0
  in
  if drain then shutdown ();
  (* Signal handlers only flip an atomic: drain dials peers and touches
     the filesystem, which must not run in handler context. *)
  let stopping = Atomic.make false in
  let request_stop _ = Atomic.set stopping true in
  ignore (Sys.signal Sys.sigterm (Sys.Signal_handle request_stop));
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle request_stop));
  while not (Atomic.get stopping) do
    Thread.delay 0.2
  done;
  shutdown ()

let cmd =
  let id = Arg.(value & opt int 0 & info [ "id" ] ~doc:"Server id (0..n-1).") in
  let port = Arg.(value & opt int 7000 & info [ "port" ] ~doc:"Listen port (0 = ephemeral).") in
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Total number of servers.") in
  let b = Arg.(value & opt int 1 & info [ "b" ] ~doc:"Fault bound.") in
  let clients =
    Arg.(value & opt string "alice,bob,carol"
         & info [ "clients" ] ~doc:"Comma-separated known client names (shared key universe).")
  in
  let guard =
    Arg.(value & flag & info [ "guard" ] ~doc:"Enable the malicious-client guard (section 5.3).")
  in
  let log_depth =
    Arg.(value & opt int 4 & info [ "log-depth" ] ~doc:"Overwritten values retained per item.")
  in
  let peers =
    Arg.(value & opt string "" & info [ "peers" ] ~doc:"Peer endpoints for gossip (host:port,...).")
  in
  let gossip_period =
    Arg.(value & opt float 1.0 & info [ "gossip-period" ] ~doc:"Seconds between gossip pushes.")
  in
  let snapshot =
    Arg.(value & opt (some string) None
         & info [ "snapshot" ] ~doc:"Persist state to this file and reload it on start \
                                     (sharded hosts use FILE.s<shard> per shard).")
  in
  let snapshot_period =
    Arg.(value & opt float 10.0 & info [ "snapshot-period" ] ~doc:"Seconds between snapshots.")
  in
  let stats_period =
    Arg.(value & opt float 0.0
         & info [ "stats-period" ]
             ~doc:"Seconds between metrics reports on stdout (0 = off); \
                   sharded hosts print one extra line per shard.")
  in
  let metrics_port =
    Arg.(value & opt (some int) None
         & info [ "metrics-port" ]
             ~doc:"Serve /metrics (Prometheus text format) and /spans \
                   (JSON span journal) on this port; enables tracing. \
                   0 = ephemeral.")
  in
  let shards =
    Arg.(value & opt string ""
         & info [ "shards" ]
             ~doc:"Comma-separated shard ids to host one replica of \
                   (empty = unsharded legacy daemon). Replica $(b,--id) of \
                   shard s is global node s*n + id.")
  in
  let shards_total =
    Arg.(value & opt int 1
         & info [ "shards-total" ]
             ~doc:"Total shards in the deployment (sizes the client-server \
                   MAC universe; defaults to max hosted shard + 1).")
  in
  let drain =
    Arg.(value & flag
         & info [ "drain" ]
             ~doc:"Graceful departure: start (restoring any snapshot), deny \
                   new writes, push the remaining gossip backlog to peers, \
                   snapshot, exit. SIGTERM does the same to a running \
                   server.")
  in
  let epoch_admin =
    Arg.(value & opt (some string) None
         & info [ "epoch-admin" ]
             ~doc:"Name of the cluster administrator whose (demo-derived) \
                   key signs config epochs. Announced membership changes \
                   are refused unless this is set.")
  in
  Cmd.v
    (Cmd.info "store_server" ~doc:"Secure distributed store server (DSN 2001 reproduction)")
    Term.(const run $ id $ port $ n $ b $ clients $ guard $ log_depth $ peers $ gossip_period
          $ snapshot $ snapshot_period $ stats_period $ metrics_port $ shards $ shards_total
          $ drain $ epoch_admin)

let () = exit (Cmd.eval cmd)
