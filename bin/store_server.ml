(* A secure store server daemon.

     dune exec bin/store_server.exe -- --id 0 --port 7000 --n 4 --b 1 \
       --peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003

   Peers are the *other* servers' endpoints, used for gossip pushes. *)

open Cmdliner

let run id port n b clients guard log_depth peers gossip_period snapshot
    snapshot_period stats_period =
  let keyring = Keys.keyring (Keys.split_commas clients) in
  let config =
    {
      (Store.Server.default_config ~n ~b) with
      Store.Server.malicious_client_guard = guard;
      log_depth;
    }
  in
  (* A long-term store survives restarts: reload the last snapshot if one
     exists, and persist periodically. *)
  let server =
    match snapshot with
    | Some path when Sys.file_exists path -> (
      match Store.Server.load_file ~config ~id ~keyring ~n ~b ~path () with
      | Some server ->
        Printf.printf "restored state from %s (%d items)\n%!" path
          (Store.Server.item_count server);
        server
      | None ->
        Printf.eprintf "warning: snapshot %s unreadable; starting fresh\n" path;
        Store.Server.create ~config ~id ~keyring ~n ~b ())
    | Some _ | None -> Store.Server.create ~config ~id ~keyring ~n ~b ()
  in
  (match snapshot with
  | Some path ->
    ignore
      (Thread.create
         (fun () ->
           while true do
             Thread.delay snapshot_period;
             try Store.Server.save_file server ~path
             with Sys_error msg -> Printf.eprintf "snapshot failed: %s\n" msg
           done)
         ())
  | None -> ());
  let gossip =
    match peers with
    | "" -> None
    | peers -> (
      match Keys.parse_endpoints peers with
      | Some peers -> Some { Tcpnet.Server_host.peers; period = gossip_period }
      | None -> failwith "bad --peers (expected host:port,host:port,...)")
  in
  let host = Tcpnet.Server_host.start ?gossip ~server ~port () in
  Printf.printf "secure store server %d/%d (b=%d, guard=%b) listening on 127.0.0.1:%d\n%!"
    id n b guard
    (Tcpnet.Server_host.port host);
  (if stats_period > 0.0 then
     ignore
       (Thread.create
          (fun () ->
            while true do
              Thread.delay stats_period;
              let m = Store.Metrics.read () in
              Printf.printf
                "stats: %d items | %d msgs, %d server verifies (%d RSA) | \
                 transport: %d connects, %d reuses, %d reconnects, %d \
                 in-flight peak\n%!"
                (Store.Server.item_count server)
                m.Store.Metrics.messages m.Store.Metrics.server_verifies
                (Store.Metrics.rsa_verifies m)
                m.Store.Metrics.tcp_connects m.Store.Metrics.tcp_reuses
                m.Store.Metrics.tcp_reconnects
                (Store.Metrics.inflight_high_water ());
              (* Gossip-peer health, as seen by this server's pool. *)
              let now = Unix.gettimeofday () in
              List.iter
                (fun h ->
                  Format.printf "stats: peer %a@."
                    (Store.Metrics.pp_endpoint_health ~now) h)
                (Store.Metrics.endpoint_health ())
            done)
          ()));
  (* Serve until killed. Relocking a held mutex raises EDEADLK on
     OCaml 5, so park on a condition nobody ever signals instead. *)
  let forever = Mutex.create () and never = Condition.create () in
  Mutex.lock forever;
  while true do
    Condition.wait never forever
  done

let cmd =
  let id = Arg.(value & opt int 0 & info [ "id" ] ~doc:"Server id (0..n-1).") in
  let port = Arg.(value & opt int 7000 & info [ "port" ] ~doc:"Listen port (0 = ephemeral).") in
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Total number of servers.") in
  let b = Arg.(value & opt int 1 & info [ "b" ] ~doc:"Fault bound.") in
  let clients =
    Arg.(value & opt string "alice,bob,carol"
         & info [ "clients" ] ~doc:"Comma-separated known client names (shared key universe).")
  in
  let guard =
    Arg.(value & flag & info [ "guard" ] ~doc:"Enable the malicious-client guard (section 5.3).")
  in
  let log_depth =
    Arg.(value & opt int 4 & info [ "log-depth" ] ~doc:"Overwritten values retained per item.")
  in
  let peers =
    Arg.(value & opt string "" & info [ "peers" ] ~doc:"Peer endpoints for gossip (host:port,...).")
  in
  let gossip_period =
    Arg.(value & opt float 1.0 & info [ "gossip-period" ] ~doc:"Seconds between gossip pushes.")
  in
  let snapshot =
    Arg.(value & opt (some string) None
         & info [ "snapshot" ] ~doc:"Persist state to this file and reload it on start.")
  in
  let snapshot_period =
    Arg.(value & opt float 10.0 & info [ "snapshot-period" ] ~doc:"Seconds between snapshots.")
  in
  let stats_period =
    Arg.(value & opt float 0.0
         & info [ "stats-period" ]
             ~doc:"Seconds between metrics reports on stdout (0 = off).")
  in
  Cmd.v
    (Cmd.info "store_server" ~doc:"Secure distributed store server (DSN 2001 reproduction)")
    Term.(const run $ id $ port $ n $ b $ clients $ guard $ log_depth $ peers $ gossip_period
          $ snapshot $ snapshot_period $ stats_period)

let () = exit (Cmd.eval cmd)
