(* Client CLI for the networked secure store.

     # one-shot session: connect, write, disconnect
     dune exec bin/store_cli.exe -- write --servers 127.0.0.1:7000,... \
       --uid alice --group notes --item todo --value "buy milk"

     # read it back (a different session; the context comes from the store)
     dune exec bin/store_cli.exe -- read --servers ... --uid alice \
       --group notes --item todo

     # self-contained demo over real sockets
     dune exec bin/store_cli.exe -- demo *)

open Cmdliner

let endpoints_of servers =
  match Keys.parse_endpoints servers with
  | Some eps -> eps
  | None -> failwith "bad --servers (expected host:port,host:port,...)"

let session_config ~n ~b ~cc ~multi ~dispersal =
  let c = Store.Client.default_config ~n ~b in
  let c =
    {
      c with
      Store.Client.consistency = (if cc then Store.Client.CC else Store.Client.MRC);
      mode = (if multi then Store.Client.Multi_writer else Store.Client.Single_writer);
      timeout = 2.0;
    }
  in
  let threshold, k, chunk = dispersal in
  let c =
    match threshold with
    | Some t -> { c with Store.Client.dispersal_threshold = t }
    | None -> c
  in
  let c =
    match k with Some k -> { c with Store.Client.dispersal_k = Some k } | None -> c
  in
  match chunk with
  | Some s -> { c with Store.Client.dispersal_chunk = s }
  | None -> c

let with_session ~servers ~b ~uid ~group ~cc ~multi ~legacy ~dispersal fn =
  let eps = Array.of_list (endpoints_of servers) in
  let n = Array.length eps in
  let endpoints id = if id >= 0 && id < n then Some eps.(id) else None in
  let keyring = Keys.keyring [ uid ] in
  let transport = if legacy then `Legacy else `Pooled in
  Tcpnet.Live.run ~transport ~endpoints (fun () ->
      match
        Store.Client.connect
          ~config:(session_config ~n ~b ~cc ~multi ~dispersal)
          ~uid ~key:(Keys.keypair uid) ~keyring ~group ()
      with
      | Error e -> failwith ("connect: " ^ Store.Client.error_to_string e)
      | Ok session ->
        let result = fn session in
        (match Store.Client.disconnect session with
        | Ok () -> ()
        | Error e ->
          Printf.eprintf "warning: context store failed: %s\n"
            (Store.Client.error_to_string e));
        result)

let legacy_flag =
  Arg.(value & flag
       & info [ "legacy-transport" ]
           ~doc:"Use the connect-per-request transport instead of the pooled one.")

(* Coded bulk transport knobs (DESIGN.md section 13). The library
   defaults apply when a flag is absent; reads follow whatever the
   stored metadata says, so only the write side strictly needs them,
   but the chunk size also shapes fragment gathers. *)
let dispersal_term =
  let threshold =
    Arg.(value & opt (some int) None
         & info [ "dispersal-threshold" ]
             ~doc:"Disperse values of at least $(docv) bytes instead of \
                   replicating them (0 disables dispersal)." ~docv:"BYTES")
  in
  let k =
    Arg.(value & opt (some int) None
         & info [ "dispersal-k" ]
             ~doc:"Reconstruction threshold for dispersed values \
                   (default b+1)." ~docv:"K")
  in
  let chunk =
    Arg.(value & opt (some int) None
         & info [ "dispersal-chunk" ]
             ~doc:"Fragment streaming chunk size in bytes." ~docv:"BYTES")
  in
  Term.(const (fun t k c -> (t, k, c)) $ threshold $ k $ chunk)

let write_cmd =
  let run servers b uid group item value cc multi legacy dispersal =
    with_session ~servers ~b ~uid ~group ~cc ~multi ~legacy ~dispersal
      (fun session ->
        match Store.Client.write session ~item value with
        | Ok () -> Printf.printf "ok\n"
        | Error e -> failwith (Store.Client.error_to_string e))
  in
  let servers = Arg.(required & opt (some string) None & info [ "servers" ] ~doc:"host:port,...") in
  let b = Arg.(value & opt int 1 & info [ "b" ] ~doc:"Fault bound.") in
  let uid = Arg.(value & opt string "alice" & info [ "uid" ] ~doc:"Client name.") in
  let group = Arg.(value & opt string "notes" & info [ "group" ] ~doc:"Item group.") in
  let item = Arg.(required & opt (some string) None & info [ "item" ] ~doc:"Item name.") in
  let value = Arg.(required & opt (some string) None & info [ "value" ] ~doc:"Value to write.") in
  let cc = Arg.(value & flag & info [ "cc" ] ~doc:"Causal consistency.") in
  let multi = Arg.(value & flag & info [ "multi" ] ~doc:"Multi-writer mode.") in
  Cmd.v (Cmd.info "write" ~doc:"Write a value")
    Term.(const run $ servers $ b $ uid $ group $ item $ value $ cc $ multi
          $ legacy_flag $ dispersal_term)

let read_cmd =
  let run servers b uid group item cc multi legacy dispersal =
    with_session ~servers ~b ~uid ~group ~cc ~multi ~legacy ~dispersal
      (fun session ->
        match Store.Client.read session ~item with
        | Ok v -> Printf.printf "%s\n" v
        | Error e -> failwith (Store.Client.error_to_string e))
  in
  let servers = Arg.(required & opt (some string) None & info [ "servers" ] ~doc:"host:port,...") in
  let b = Arg.(value & opt int 1 & info [ "b" ] ~doc:"Fault bound.") in
  let uid = Arg.(value & opt string "alice" & info [ "uid" ] ~doc:"Client name.") in
  let group = Arg.(value & opt string "notes" & info [ "group" ] ~doc:"Item group.") in
  let item = Arg.(required & opt (some string) None & info [ "item" ] ~doc:"Item name.") in
  let cc = Arg.(value & flag & info [ "cc" ] ~doc:"Causal consistency.") in
  let multi = Arg.(value & flag & info [ "multi" ] ~doc:"Multi-writer mode.") in
  Cmd.v (Cmd.info "read" ~doc:"Read a value")
    Term.(const run $ servers $ b $ uid $ group $ item $ cc $ multi $ legacy_flag
          $ dispersal_term)

(* Self-contained end-to-end demo: n servers on ephemeral localhost
   ports, gossip threads between them, and two client sessions over real
   sockets. *)
let demo_cmd =
  let run () =
    let n = 4 and b = 1 in
    let clients = [ "alice"; "bob" ] in
    let keyring = Keys.keyring clients in
    let servers =
      Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ())
    in
    let hosts =
      Array.map
        (fun server -> Tcpnet.Server_host.start ~server ~port:0 ())
        servers
    in
    let eps = Array.map (fun h -> ("127.0.0.1", Tcpnet.Server_host.port h)) hosts in
    Printf.printf "started %d servers on ports: %s\n%!" n
      (String.concat ", "
         (Array.to_list (Array.map (fun (_, p) -> string_of_int p) eps)));
    let endpoints id = if id >= 0 && id < n then Some eps.(id) else None in
    let config = { (Store.Client.default_config ~n ~b) with Store.Client.timeout = 2.0 } in
    Tcpnet.Live.run ~endpoints (fun () ->
        (match
           Store.Client.connect ~config ~uid:"alice" ~key:(Keys.keypair "alice")
             ~keyring ~group:"notes" ()
         with
        | Error e -> failwith (Store.Client.error_to_string e)
        | Ok alice ->
          (match Store.Client.write alice ~item:"todo" "ship the release" with
          | Ok () -> Printf.printf "alice wrote over TCP\n%!"
          | Error e -> failwith (Store.Client.error_to_string e));
          ignore (Store.Client.disconnect alice));
        match
          Store.Client.connect ~config ~uid:"bob" ~key:(Keys.keypair "bob")
            ~keyring ~group:"notes" ()
        with
        | Error e -> failwith (Store.Client.error_to_string e)
        | Ok bob -> (
          match Store.Client.read bob ~item:"todo" with
          | Ok v -> Printf.printf "bob read over TCP: %S\n%!" v
          | Error e -> failwith (Store.Client.error_to_string e)));
    Array.iter Tcpnet.Server_host.stop hosts;
    let m = Store.Metrics.read () in
    let r = Store.Metrics.rpc_latency_stats () in
    Printf.printf
      "transport: %d rpc rounds over %d pooled connections (%d reuses, %d \
       reconnects), rpc p50 %.0f us\n"
      m.Store.Metrics.rpcs m.Store.Metrics.tcp_connects
      m.Store.Metrics.tcp_reuses m.Store.Metrics.tcp_reconnects
      (r.Store.Metrics.p50_ns /. 1e3);
    let now = Unix.gettimeofday () in
    List.iter
      (fun h ->
        Format.printf "endpoint %a@." (Store.Metrics.pp_endpoint_health ~now) h)
      (Store.Metrics.endpoint_health ());
    Printf.printf "demo ok\n"
  in
  Cmd.v (Cmd.info "demo" ~doc:"Self-contained networked demo") Term.(const run $ const ())

(* --- stats: scrape a server's /metrics and pretty-print ----------------- *)

(* One exposition sample: "name{l=\"v\",...} value". The label parser is
   deliberately simple — our label values (endpoints, op and phase
   names) never contain commas or escaped quotes. *)
let parse_sample line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some sp -> (
    let metric = String.sub line 0 sp in
    match float_of_string_opt (String.sub line (sp + 1) (String.length line - sp - 1)) with
    | None -> None
    | Some v ->
      let name, labels =
        match String.index_opt metric '{' with
        | None -> (metric, [])
        | Some i when String.length metric > i + 1 && metric.[String.length metric - 1] = '}' ->
          let name = String.sub metric 0 i in
          let inner = String.sub metric (i + 1) (String.length metric - i - 2) in
          let labels =
            List.filter_map
              (fun kv ->
                match String.index_opt kv '=' with
                | None -> None
                | Some eq ->
                  let k = String.sub kv 0 eq in
                  let v = String.sub kv (eq + 1) (String.length kv - eq - 1) in
                  let v =
                    if String.length v >= 2 && v.[0] = '"' then
                      String.sub v 1 (String.length v - 2)
                    else v
                  in
                  Some (k, v))
              (String.split_on_char ',' inner)
          in
          (name, labels)
        | Some _ -> (metric, [])
      in
      Some (name, labels, v))

let pp_dur_s fmt s =
  if s < 1e-3 then Format.fprintf fmt "%.0fus" (s *. 1e6)
  else if s < 1.0 then Format.fprintf fmt "%.2fms" (s *. 1e3)
  else Format.fprintf fmt "%.3fs" s

(* Nearest-rank percentile from cumulative buckets, same convention the
   server used to fill them: first bucket whose cumulative count covers
   the rank; its upper bound is the answer. *)
let bucket_percentile buckets total p =
  if total = 0 then 0.0
  else begin
    let rank = max 1 (min total (int_of_float (ceil (p /. 100.0 *. float_of_int total)))) in
    let rec find = function
      | [] -> 0.0
      | (le, cum) :: rest -> if cum >= rank then le else find rest
    in
    find buckets
  end

let stats_cmd =
  let run host port spans =
    (match Tcpnet.Metrics_http.get ~host ~port ~path:"/metrics" () with
    | Error e -> failwith ("scrape http://" ^ host ^ ":" ^ string_of_int port ^ "/metrics failed: " ^ e)
    | Ok body ->
      let lines = String.split_on_char '\n' body in
      (* Histograms reassemble from their _bucket samples, keyed by base
         name + labels minus "le"; everything else prints as-is. *)
      let histos : (string * (string * string) list, (float * int) list ref) Hashtbl.t =
        Hashtbl.create 16
      in
      let scalars = ref [] in
      List.iter
        (fun line ->
          if line <> "" && line.[0] <> '#' then
            match parse_sample line with
            | None -> ()
            | Some (name, labels, v) ->
              if Filename.check_suffix name "_bucket" then begin
                let base = Filename.chop_suffix name "_bucket" in
                let le =
                  match List.assoc_opt "le" labels with
                  | Some "+Inf" -> infinity
                  | Some s -> (try float_of_string s with _ -> infinity)
                  | None -> infinity
                in
                let rest =
                  List.sort compare (List.remove_assoc "le" labels)
                in
                let cell =
                  match Hashtbl.find_opt histos (base, rest) with
                  | Some c -> c
                  | None ->
                    let c = ref [] in
                    Hashtbl.add histos (base, rest) c;
                    c
                in
                cell := (le, int_of_float v) :: !cell
              end
              else if
                Filename.check_suffix name "_sum"
                || Filename.check_suffix name "_count"
              then () (* folded into the histogram line below *)
              else scalars := (name, labels, v) :: !scalars)
        lines;
      let pp_labels fmt = function
        | [] -> ()
        | labels ->
          Format.fprintf fmt "{%s}"
            (String.concat ","
               (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels))
      in
      Format.printf "@[<v>== scalars ==@,";
      List.iter
        (fun (name, labels, v) ->
          Format.printf "%s%a %.0f@," name pp_labels labels v)
        (List.sort compare !scalars);
      Format.printf "@,== latency histograms ==@,";
      let entries =
        List.sort compare
          (Hashtbl.fold (fun k c acc -> (k, List.sort compare !c) :: acc) histos [])
      in
      List.iter
        (fun ((base, labels), buckets) ->
          let total =
            match List.rev buckets with (_, cum) :: _ -> cum | [] -> 0
          in
          Format.printf "%s%a n=%d p50=%a p95=%a p99=%a@," base pp_labels
            labels total pp_dur_s
            (bucket_percentile buckets total 50.0)
            pp_dur_s
            (bucket_percentile buckets total 95.0)
            pp_dur_s
            (bucket_percentile buckets total 99.0))
        entries;
      Format.printf "@]@?");
    if spans then
      match Tcpnet.Metrics_http.get ~host ~port ~path:"/spans" () with
      | Error e -> failwith ("scrape /spans failed: " ^ e)
      | Ok body -> Printf.printf "%s\n" body
  in
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Metrics host.") in
  let port =
    Arg.(required & opt (some int) None
         & info [ "metrics-port"; "p" ] ~doc:"The server's --metrics-port.")
  in
  let spans =
    Arg.(value & flag & info [ "spans" ] ~doc:"Also dump the span journal (/spans JSON).")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Scrape a server's /metrics endpoint and pretty-print it")
    Term.(const run $ host $ port $ spans)

(* --- trace: fetch a stitched trace and render it as a tree --------------- *)

(* One span as parsed back out of a /trace dump (the same JSON
   Obs.Span.trace_json emits, so --file artifacts and live fetches
   render identically). *)
type trace_span = {
  sid : int;
  sop : string;
  sstart : float;
  sdur_ns : float;
  sparent : int;
  snode : string;
  sattrs : string list;
  sphases : (string * float * float) list;  (* name, start_ns, dur_ns *)
}

let span_of_json v =
  let open Obs.Jsonx in
  let num k = Option.bind (member k v) num_of in
  let str k = Option.bind (member k v) str_of in
  match (num "id", str "op", num "start", num "dur_ns") with
  | Some id, Some op, Some start, Some dur ->
    let phases =
      match Option.bind (member "phases" v) arr_of with
      | None -> []
      | Some ps ->
        List.filter_map
          (fun p ->
            match
              ( Option.bind (member "name" p) str_of,
                Option.bind (member "start_ns" p) num_of,
                Option.bind (member "dur_ns" p) num_of )
            with
            | Some n, Some s, Some d -> Some (n, s, d)
            | _ -> None)
          ps
    in
    let attrs =
      match Option.bind (member "attrs" v) arr_of with
      | None -> []
      | Some vs -> List.filter_map str_of vs
    in
    Some
      {
        sid = int_of_float id;
        sop = op;
        sstart = start;
        sdur_ns = dur;
        sparent = (match num "parent" with Some p -> int_of_float p | None -> 0);
        snode = Option.value ~default:"" (str "node");
        sattrs = attrs;
        sphases = phases;
      }
  | _ -> None

(* Time-aligned tree: children under their parent span, every line
   carrying an offset from the trace start and a proportional bar, so a
   retry gap or a gossip hop trailing the client op is visible at a
   glance. *)
let render_trace ~id ~node spans =
  match spans with
  | [] -> Printf.printf "trace %s: no spans\n" id
  | _ ->
    let t0 = List.fold_left (fun a s -> min a s.sstart) infinity spans in
    let t1 =
      List.fold_left (fun a s -> max a (s.sstart +. (s.sdur_ns /. 1e9))) t0 spans
    in
    let window = max (t1 -. t0) 1e-9 in
    let width = 32 in
    let bar start_s dur_s =
      let b = Bytes.make width '.' in
      let lo = int_of_float (float_of_int width *. (start_s -. t0) /. window) in
      let hi =
        int_of_float
          (ceil (float_of_int width *. (start_s +. dur_s -. t0) /. window))
      in
      let lo = max 0 (min (width - 1) lo) in
      let hi = max (lo + 1) (min width hi) in
      for i = lo to hi - 1 do
        Bytes.set b i '='
      done;
      Bytes.to_string b
    in
    Printf.printf "trace %s%s: %d spans, %.2fms\n" id
      (if node = "" then "" else " (assembled on " ^ node ^ ")")
      (List.length spans) (window *. 1e3);
    let ids = List.map (fun s -> s.sid) spans in
    let roots, children =
      List.partition (fun s -> s.sparent = 0 || not (List.mem s.sparent ids)) spans
    in
    let by_start l = List.sort (fun a b -> compare a.sstart b.sstart) l in
    let rec render indent s =
      let off_ms = (s.sstart -. t0) *. 1e3 in
      let dur_ms = s.sdur_ns /. 1e6 in
      Printf.printf "%s|%s| %+9.2fms %9.2fms  %s%s%s\n" indent
        (bar s.sstart (s.sdur_ns /. 1e9))
        off_ms dur_ms s.sop
        (if s.snode = "" then "" else "@" ^ s.snode)
        (match s.sattrs with
        | [] -> ""
        | l -> "  [" ^ String.concat "; " (List.rev l) ^ "]");
      List.iter
        (fun (n, pstart_ns, pdur_ns) ->
          Printf.printf "%s %s  %+9.2fms %9.2fms    - %s\n" indent
            (bar (s.sstart +. (pstart_ns /. 1e9)) (pdur_ns /. 1e9))
            (((s.sstart +. (pstart_ns /. 1e9)) -. t0) *. 1e3)
            (pdur_ns /. 1e6) n)
        (List.rev s.sphases);
      List.iter
        (render (indent ^ "  "))
        (by_start (List.filter (fun c -> c.sparent = s.sid) children))
    in
    List.iter (render "") (by_start roots)

let trace_cmd =
  let run host port id file =
    let body =
      match (file, id) with
      | Some path, _ ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      | None, Some id -> (
        match
          Tcpnet.Metrics_http.get ~host ~port ~path:("/trace?id=" ^ id) ()
        with
        | Ok body -> body
        | Error e -> failwith ("fetch /trace failed: " ^ e))
      | None, None -> failwith "need --id (with --metrics-port) or --file"
    in
    match Obs.Jsonx.parse body with
    | None -> failwith "trace dump is not valid JSON"
    | Some v -> (
      match Option.bind (Obs.Jsonx.member "error" v) Obs.Jsonx.str_of with
      | Some err -> failwith ("server: " ^ err)
      | None ->
        let id =
          Option.value ~default:"?"
            (Option.bind (Obs.Jsonx.member "trace" v) Obs.Jsonx.str_of)
        in
        let node =
          Option.value ~default:""
            (Option.bind (Obs.Jsonx.member "node" v) Obs.Jsonx.str_of)
        in
        let spans =
          match Option.bind (Obs.Jsonx.member "spans" v) Obs.Jsonx.arr_of with
          | None -> []
          | Some vs -> List.filter_map span_of_json vs
        in
        render_trace ~id ~node spans)
  in
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Metrics host.") in
  let port =
    Arg.(value & opt int 0
         & info [ "metrics-port"; "p" ] ~doc:"The server's --metrics-port.")
  in
  let id =
    Arg.(value & opt (some string) None
         & info [ "id" ] ~doc:"Trace id (lowercase hex) to fetch via /trace.")
  in
  let file =
    Arg.(value & opt (some string) None
         & info [ "file" ] ~doc:"Render a saved trace dump instead of fetching.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Fetch a stitched distributed trace and render it as a time-aligned tree")
    Term.(const run $ host $ port $ id $ file)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "store_cli" ~doc:"Secure distributed store client (DSN 2001 reproduction)")
          [ write_cmd; read_cmd; demo_cmd; stats_cmd; trace_cmd ]))
