(* The paper's class-3 application (section 2): citizens collaboratively
   develop a community plan. Multiple writers, causal consistency,
   malicious-client protection:

   - multi-writer timestamps (time, writer, digest) order concurrent
     drafts;
   - causal consistency makes sure nobody reads a comment without the
     draft it refers to;
   - the section 5.3 guard holds a malicious member's poisoned write
     (spurious context) so it can neither be read nor pollute contexts.

     dune exec examples/community_plan.exe *)

let printf = Printf.printf

let () =
  let n = 4 and b = 1 in
  let keyring = Store.Keyring.create () in
  let key name = Crypto.Rsa.generate (Crypto.Prng.create ~seed:name) in
  let alice = key "alice" and bob = key "bob" and mallory = key "mallory" in
  Store.Keyring.register keyring "alice" alice.Crypto.Rsa.public;
  Store.Keyring.register keyring "bob" bob.Crypto.Rsa.public;
  Store.Keyring.register keyring "mallory" mallory.Crypto.Rsa.public;
  (* Servers run with the malicious-client guard on: a write is reported
     only once its causal predecessors have arrived. *)
  let config =
    { (Store.Server.default_config ~n ~b) with Store.Server.malicious_client_guard = true }
  in
  let servers =
    Array.init n (fun id -> Store.Server.create ~config ~id ~keyring ~n ~b ())
  in
  let handlers dst ~from request =
    if dst >= 0 && dst < n then Store.Server.handler servers.(dst) ~now:0.0 ~from request
    else None
  in
  let ok = function
    | Ok v -> v
    | Error e -> failwith (Store.Client.error_to_string e)
  in
  let mw_cc c =
    { c with Store.Client.mode = Store.Client.Multi_writer; consistency = Store.Client.CC }
  in

  Sim.Direct.run ~handlers (fun () ->
      let connect name k =
        ok
          (Store.Client.connect
             ~config:(mw_cc (Store.Client.default_config ~n ~b))
             ~uid:name ~key:k ~keyring ~group:"plan" ())
      in
      let a = connect "alice" alice in
      let b_ = connect "bob" bob in

      (* Alice drafts; Bob reads the draft and comments on it. CC makes
         the comment depend on the draft. *)
      ok (Store.Client.write a ~item:"draft" "1. fix the playground fence");
      let draft = ok (Store.Client.read b_ ~item:"draft") in
      printf "bob read the draft: %S\n" draft;
      ok (Store.Client.write b_ ~item:"comments" "re fence: use cedar posts");

      (* Carol-like reader: anyone who sees the comment is guaranteed to
         see (at least) the draft version it was based on. *)
      let carol = connect "alice" alice in
      let comment = ok (Store.Client.read carol ~item:"comments") in
      let draft' = ok (Store.Client.read carol ~item:"draft") in
      printf "observer read: comment=%S, and causally-consistent draft=%S\n"
        comment draft';

      (* Concurrent revision: both write the draft; every reader settles
         on the same winner (3-tuple timestamp order). *)
      ok (Store.Client.write a ~item:"draft" "2. fence + new benches");
      ok (Store.Client.write b_ ~item:"draft" "2. fence + street lights");
      let w1 = ok (Store.Client.read (connect "alice" alice) ~item:"draft") in
      let w2 = ok (Store.Client.read (connect "bob" bob) ~item:"draft") in
      printf "concurrent drafts converge: %S = %S -> %b\n" w1 w2 (w1 = w2);

      (* Mallory attacks: a signed write whose context references a
         version that exists nowhere (the denial-of-service of section
         5.3). Guarded servers hold it. *)
      let dep = Store.Uid.make ~group:"plan" ~item:"draft" in
      let doc = Store.Uid.make ~group:"plan" ~item:"minutes" in
      let bogus =
        Store.Context.of_bindings
          [ (dep, Store.Stamp.multi ~time:999_999_999 ~writer:"mallory" ~value:"?") ]
      in
      let poisoned =
        Store.Signing.sign_write ~key:mallory ~writer:"mallory" ~uid:doc
          ~stamp:(Store.Stamp.multi ~time:77 ~writer:"mallory" ~value:"chaos")
          ~wctx:bogus "chaos"
      in
      Array.iter
        (fun s ->
          ignore
            (Store.Server.handle s ~now:0.0 ~from:(-1)
               {
                 Store.Payload.token = None; epoch = 0;
                 request = Store.Payload.Write_req { write = poisoned; await_ack = true };
               }))
        servers;
      let reader = connect "bob" bob in
      (match Store.Client.read reader ~item:"minutes" with
      | Error (Store.Client.Not_found _) ->
        printf "mallory's poisoned write is held by the guard: invisible\n"
      | Ok v -> printf "BUG: poisoned value leaked: %S\n" v
      | Error e -> printf "read failed differently: %s\n" (Store.Client.error_to_string e));
      printf "held at server 0: %d write(s)\n"
        (Store.Server.pending_count servers.(0) doc));
  printf "community_plan ok\n"
